// Control-plane survivability: a sim-clock hello/keepalive state machine
// sessionizes the BGP mesh and LDP. A crashed or control-plane-partitioned
// router misses hellos; after HoldMisses scans its sessions flap. With
// graceful restart (RFC 4724 / RFC 3478 shape) peers retain the flapped
// box's routes and label bindings as stale and keep forwarding on them —
// the paper's availability story — until the box returns (mark-and-sweep
// refresh) or the restart timer expires (stale state swept, withdrawals
// propagated, and a control-plane-only crash hardens into a real one).
// Route-flap damping penalties decay on the same scan.
package core

import (
	"fmt"

	"mplsvpn/internal/bgp"
	"mplsvpn/internal/ldp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/telemetry"
	"mplsvpn/internal/topo"
)

// Survivability defaults.
const (
	DefaultHelloInterval = 25 * sim.Millisecond
	DefaultHoldMisses    = 3
	DefaultRestartTime   = 500 * sim.Millisecond
)

// SurvivabilityOptions tunes EnableSurvivability. Zero values select
// defaults.
type SurvivabilityOptions struct {
	// Hello is the hello/keepalive scan period; a session is declared lost
	// after HoldMisses consecutive missed scans (the hold time).
	Hello      sim.Time
	HoldMisses int

	// GracefulRestart retains a flapped node's routes and label bindings as
	// stale for RestartTime, preserving forwarding state instead of
	// withdrawing it (RFC 4724). Off, session loss withdraws immediately.
	GracefulRestart bool
	RestartTime     sim.Time

	// Damping enables route-flap damping at every speaker (zero = off).
	Damping bgp.DampingConfig

	// Horizon bounds the pre-scheduled hello scans in virtual time, like
	// TelemetryOptions.Horizon; the engine can still quiesce after it.
	Horizon sim.Time
}

// survState is one provider node's session health as the hello state
// machine sees it.
type survState int

const (
	sessUp survState = iota
	sessDown
	sessRestarting
)

func (s survState) String() string {
	switch s {
	case sessDown:
		return "down"
	case sessRestarting:
		return "restarting"
	}
	return "up"
}

// survSession is the per-node hello state.
type survSession struct {
	state      survState
	misses     int
	grDeadline sim.Time
}

// survivability is the live state hanging off the backbone.
type survivability struct {
	opt  SurvivabilityOptions
	sess map[topo.NodeID]*survSession

	// SessionStats counters.
	flaps      int
	restores   int
	staleSwept int
	withdrawn  int
	damped     int
	reused     int
}

func (s *survivability) sessionFor(n topo.NodeID) *survSession {
	st, ok := s.sess[n]
	if !ok {
		st = &survSession{}
		s.sess[n] = st
	}
	return st
}

// stateOf is nil-safe: without survivability every session is Up.
func (s *survivability) stateOf(n topo.NodeID) survState {
	if s == nil {
		return sessUp
	}
	if st, ok := s.sess[n]; ok {
		return st.state
	}
	return sessUp
}

// EnableSurvivability switches the control-plane survivability layer on.
// Idempotent; call before the run with Horizon covering its duration.
func (b *Backbone) EnableSurvivability(opts SurvivabilityOptions) {
	if b.surv != nil {
		return
	}
	if opts.Hello == 0 {
		opts.Hello = DefaultHelloInterval
	}
	if opts.HoldMisses == 0 {
		opts.HoldMisses = DefaultHoldMisses
	}
	if opts.RestartTime == 0 {
		opts.RestartTime = DefaultRestartTime
	}
	b.surv = &survivability{opt: opts, sess: make(map[topo.NodeID]*survSession)}
	b.BGP.SetClock(func() sim.Time { return b.E.Now() })
	if opts.Damping.Enabled() {
		b.BGP.SetDamping(opts.Damping)
	}
	if opts.Horizon > 0 {
		for t := opts.Hello; t <= opts.Horizon; t += opts.Hello {
			b.E.After(t, b.helloScan)
		}
	}
}

// SessionStats is the survivability layer's externally visible accounting.
type SessionStats struct {
	Flaps      int // sessions declared lost
	Restores   int // sessions re-established
	StaleSwept int // stale routes swept (restart expiry or post-refresh)
	Withdrawn  int // routes withdrawn by session loss or sweep
	Damped     int // prefixes suppressed by route-flap damping
	Reused     int // suppressed prefixes reinstated by decay
}

// SessionStats reports the survivability counters (zero value when the
// layer is off).
func (b *Backbone) SessionStats() SessionStats {
	if b.surv == nil {
		return SessionStats{}
	}
	s := b.surv
	return SessionStats{
		Flaps: s.flaps, Restores: s.restores,
		StaleSwept: s.staleSwept, Withdrawn: s.withdrawn,
		Damped: s.damped, Reused: s.reused,
	}
}

// helloScan is one hello/keepalive round over every provider router, plus
// the damping decay tick. Pre-scheduled on the engine's global band every
// Hello up to the horizon, so the serial and sharded engines see the same
// schedule.
func (b *Backbone) helloScan() {
	s := b.surv
	now := b.E.Now()
	for _, n := range b.providerNodes {
		st := s.sessionFor(n)
		dead := b.nodeDown[n] || b.ctrlDown[n]
		switch st.state {
		case sessUp:
			if !dead {
				st.misses = 0
				continue
			}
			st.misses++
			if st.misses >= s.opt.HoldMisses {
				b.sessionLost(n, st)
			}
		case sessRestarting:
			if !dead {
				b.sessionRestored(n, st)
			} else if now >= st.grDeadline {
				b.grExpired(n, st)
			}
		case sessDown:
			if !dead {
				b.sessionRestored(n, st)
			}
		}
	}
	if reused := b.BGP.DecayDamping(now); len(reused) > 0 {
		for _, p := range reused {
			s.reused++
			b.journal(telemetry.EventRouteReused, "prefix:"+p.String(),
				"flap penalty decayed to reuse threshold; paths reinstated")
		}
		b.importVRFs()
	}
}

// sessionLost flaps every session of node n: BGP routes are stale-retained
// (graceful restart) or withdrawn, LDP bindings likewise, and the per-peer
// impact is journaled as session_flap events.
func (b *Backbone) sessionLost(n topo.NodeID, st *survSession) {
	s := b.surv
	gr := s.opt.GracefulRestart
	name := b.G.Name(n)
	if gr {
		st.state = sessRestarting
		st.grDeadline = b.E.Now() + s.opt.RestartTime
	} else {
		st.state = sessDown
	}
	s.flaps++

	if _, ok := b.BGP.Speaker(n); ok {
		impacts := b.BGP.SessionDown(n, gr)
		withdrawn := 0
		for _, im := range impacts {
			b.journal(telemetry.EventSessionFlap, "session:bgp:"+name,
				fmt.Sprintf("protocol=bgp node=%s peer=%s stale_routes=%d withdrawn=%d",
					name, b.G.Name(im.Peer), im.Stale, im.Withdrawn))
			withdrawn += im.Withdrawn
		}
		if len(impacts) == 0 {
			b.journal(telemetry.EventSessionFlap, "session:bgp:"+name,
				fmt.Sprintf("protocol=bgp node=%s stale_routes=0 withdrawn=0", name))
		}
		if withdrawn > 0 {
			s.withdrawn += withdrawn
			b.importVRFs()
		}
	}
	if b.LDP != nil {
		if _, ok := b.LDP.Speakers[n]; ok {
			for _, im := range b.LDP.SessionDown(n, gr) {
				b.journal(telemetry.EventSessionFlap, "session:ldp:"+name,
					fmt.Sprintf("protocol=ldp node=%s peer=%s stale_bindings=%d",
						name, b.G.Name(im.Peer), im.Bindings))
			}
		}
	}
	if b.tel != nil {
		b.tel.Reg.Counter("ctrl_session_flaps", telemetry.Labels{Node: name}).Inc()
		b.tel.Reg.Counter("ctrl_session_flaps_total", telemetry.Labels{}).Inc()
	}
}

// sessionRestored re-establishes node n's sessions: BGP reconverges so the
// returned box re-announces (refreshing stale routes in place), then the
// mark-and-sweep pass withdraws what it no longer announces, and VRFs
// re-import.
func (b *Backbone) sessionRestored(n topo.NodeID, st *survSession) {
	s := b.surv
	name := b.G.Name(n)
	st.state = sessUp
	st.misses = 0
	s.restores++

	if _, ok := b.BGP.Speaker(n); ok {
		pre := b.BGP.StaleFrom(n)
		b.BGP.SessionUp(n)
		b.BGP.Converge()
		swept, sweptBy := b.BGP.SweepStale(n)
		sweptAt := make(map[topo.NodeID]int, len(sweptBy))
		for _, im := range sweptBy {
			sweptAt[im.Peer] = im.Withdrawn
		}
		for _, im := range pre {
			b.journal(telemetry.EventSessionRestored, "session:bgp:"+name,
				fmt.Sprintf("protocol=bgp node=%s peer=%s stale_refreshed=%d stale_swept=%d",
					name, b.G.Name(im.Peer), im.Stale-sweptAt[im.Peer], sweptAt[im.Peer]))
		}
		if len(pre) == 0 {
			b.journal(telemetry.EventSessionRestored, "session:bgp:"+name,
				fmt.Sprintf("protocol=bgp node=%s stale_refreshed=0 stale_swept=0", name))
		}
		s.staleSwept += swept
		s.withdrawn += swept
		b.importVRFs()
		b.journalSuppressed()
	} else {
		b.journal(telemetry.EventSessionRestored, "session:"+name,
			"control-plane sessions re-established")
	}
	if b.LDP != nil {
		b.LDP.SessionUp(n)
	}
	if b.tel != nil {
		b.tel.Reg.Counter("ctrl_session_restores", telemetry.Labels{Node: name}).Inc()
	}
}

// grExpired ends a graceful restart that outlived its timer: stale routes
// are swept and withdrawn, and a control-plane-only crash hardens into a
// real one — the preserved forwarding state has aged out.
func (b *Backbone) grExpired(n topo.NodeID, st *survSession) {
	s := b.surv
	name := b.G.Name(n)
	st.state = sessDown

	if _, ok := b.BGP.Speaker(n); ok {
		swept, _ := b.BGP.SweepStale(n)
		s.staleSwept += swept
		s.withdrawn += swept
		b.journal(telemetry.EventStaleSwept, "session:bgp:"+name,
			fmt.Sprintf("restart timer expired; stale_routes_swept=%d", swept))
		if swept > 0 {
			b.importVRFs()
		}
	}
	if b.LDP != nil {
		if _, ok := b.LDP.Speakers[n]; ok {
			b.LDP.MarkSession(n, ldp.SessionDownState)
		}
	}
	if b.ctrlDown[n] {
		delete(b.ctrlDown, n)
		b.hardCrashNode(n)
		b.journal(telemetry.EventNodeDown, "node:"+name,
			"graceful-restart timer expired; forwarding state withdrawn")
		b.scheduleReconverge(0)
	}
}

// journalSuppressed drains the newly damped prefixes into the journal.
func (b *Backbone) journalSuppressed() {
	for _, p := range b.BGP.TakeSuppressed() {
		b.surv.damped++
		b.journal(telemetry.EventRouteDamped, "prefix:"+p.String(),
			"flap penalty crossed suppress threshold; received paths suppressed")
	}
}
