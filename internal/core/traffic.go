package core

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
	"mplsvpn/internal/trafgen"
)

// FlowBetween creates a measured flow from one site to another: the source
// address is the first host of the origin site's first prefix, the
// destination the first host of the target site's first prefix. Delivered
// packets are matched back to the flow by 5-tuple and recorded in its
// FlowStats.
func (b *Backbone) FlowBetween(name, fromSite, toSite string, dstPort uint16) (*trafgen.Flow, error) {
	from, ok := b.sites[fromSite]
	if !ok {
		return nil, fmt.Errorf("core: unknown site %q", fromSite)
	}
	to, ok := b.sites[toSite]
	if !ok {
		return nil, fmt.Errorf("core: unknown site %q", toSite)
	}
	if len(from.Spec.Prefixes) == 0 || len(to.Spec.Prefixes) == 0 {
		return nil, fmt.Errorf("core: sites need prefixes to exchange traffic")
	}
	f := trafgen.NewFlow(name, from.CE,
		firstHost(from.Spec.Prefixes[0]), firstHost(to.Spec.Prefixes[0]), dstPort)
	f.VPN = from.Spec.VPN
	b.registerFlow(f)
	return f, nil
}

// firstHost returns the .1 address of a prefix.
func firstHost(p addr.Prefix) addr.IPv4 { return p.Addr + 1 }

// FlowBetweenHosts creates a measured flow originating at a specific
// workstation behind the origin site's CE (SiteSpec.Hosts must cover the
// index) and addressed to a specific workstation of the target site.
func (b *Backbone) FlowBetweenHosts(name, fromSite string, fromHost int, toSite string, toHost int, dstPort uint16) (*trafgen.Flow, error) {
	from, ok := b.sites[fromSite]
	if !ok {
		return nil, fmt.Errorf("core: unknown site %q", fromSite)
	}
	to, ok := b.sites[toSite]
	if !ok {
		return nil, fmt.Errorf("core: unknown site %q", toSite)
	}
	if fromHost < 0 || fromHost >= len(from.hosts) {
		return nil, fmt.Errorf("core: site %q has no host %d", fromSite, fromHost)
	}
	if toHost < 0 || toHost >= to.Spec.Hosts {
		return nil, fmt.Errorf("core: site %q has no host %d", toSite, toHost)
	}
	f := trafgen.NewFlow(name, from.hosts[fromHost],
		from.Spec.Prefixes[0].Addr+addr.IPv4(fromHost+1),
		to.Spec.Prefixes[0].Addr+addr.IPv4(toHost+1), dstPort)
	f.VPN = from.Spec.VPN
	b.registerFlow(f)
	return f, nil
}

// ReregisterFlow refreshes the delivery-dispatch key after a caller
// mutates a flow's addressing (Src/Dst/ports). Without this, packets of
// the mutated flow still deliver but stop being credited to its stats.
func (b *Backbone) ReregisterFlow(f *trafgen.Flow) { b.registerFlow(f) }

// registerFlow wires delivery accounting for a flow (dispatch happens in
// onDeliver).
func (b *Backbone) registerFlow(f *trafgen.Flow) {
	if b.flows == nil {
		b.flows = make(map[packet.FlowKey]*trafgen.Flow)
	}
	key := packet.FlowKey{
		Src: f.Src, Dst: f.Dst,
		SrcPort: f.SrcPort, DstPort: f.DstPort, Protocol: f.Proto,
	}
	b.flows[key] = f
}

// RequestResponse builds a transactional exchange between two sites: the
// client site issues requests, the server site answers, and round-trip
// times accumulate in the returned ReqResp. Ports: requests go to dstPort,
// responses return to dstPort+1.
func (b *Backbone) RequestResponse(name, clientSite, serverSite string, dstPort uint16, respPayload int) (*trafgen.ReqResp, error) {
	req, err := b.FlowBetween(name+"-req", clientSite, serverSite, dstPort)
	if err != nil {
		return nil, err
	}
	resp, err := b.FlowBetween(name+"-resp", serverSite, clientSite, dstPort+1)
	if err != nil {
		return nil, err
	}
	rr := trafgen.NewReqResp(b.Net, req, resp, respPayload)
	b.OnDeliver(func(_ topo.NodeID, p *packet.Packet) { rr.HandleDelivery(p) })
	return rr, nil
}

// AttachAIMD turns a flow into a greedy congestion-controlled bulk source:
// deliveries feed Ack (additive increase), network drops feed Loss
// (multiplicative decrease). Returns the source; call Start on it.
func (b *Backbone) AttachAIMD(f *trafgen.Flow, payload int, stop sim.Time) *trafgen.AIMD {
	a := trafgen.NewAIMD(b.Net, f, payload, stop)
	key := packet.FlowKey{
		Src: f.Src, Dst: f.Dst,
		SrcPort: f.SrcPort, DstPort: f.DstPort, Protocol: f.Proto,
	}
	if b.aimd == nil {
		b.aimd = make(map[packet.FlowKey]*trafgen.AIMD)
		// AIMD acks ride the barrier's time-sorted delivery stream.
		b.disableLocalDeliver()
		prevDrop := b.Net.OnDrop
		b.Net.OnDrop = func(at topo.NodeID, p *packet.Packet, reason packet.DropReason) {
			if src, ok := b.aimd[p.FlowKey()]; ok {
				src.Loss()
			}
			if prevDrop != nil {
				prevDrop(at, p, reason)
			}
		}
	}
	b.aimd[key] = a
	b.RegisterSource(a)
	return a
}
