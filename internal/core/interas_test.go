package core

import (
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/trafgen"
)

// buildTwoCarriers provisions VPN "acme" across two providers: a site in
// AS1 and a site in AS2, joined at ASBR PEs with an option-A interconnect.
func buildTwoCarriers(t *testing.T) (*InterAS, *trafgen.Flow, *trafgen.Flow) {
	t.Helper()
	x := NewInterAS(42,
		[]string{"as1", "as2"},
		[]Config{{Scheduler: SchedHybrid}, {Scheduler: SchedHybrid}})

	as1 := x.AS("as1")
	as1.AddPE("as1-PE1")
	as1.AddP("as1-P1")
	as1.AddPE("as1-ASBR")
	as1.Link("as1-PE1", "as1-P1", 100e6, sim.Millisecond, 1)
	as1.Link("as1-P1", "as1-ASBR", 100e6, sim.Millisecond, 1)
	as1.BuildProvider()

	as2 := x.AS("as2")
	as2.AddPE("as2-ASBR")
	as2.AddP("as2-P1")
	as2.AddPE("as2-PE1")
	as2.Link("as2-ASBR", "as2-P1", 100e6, sim.Millisecond, 1)
	as2.Link("as2-P1", "as2-PE1", 100e6, sim.Millisecond, 1)
	as2.BuildProvider()

	as1.DefineVPN("acme")
	as2.DefineVPN("acme")
	as1.AddSite(SiteSpec{VPN: "acme", Name: "west", PE: "as1-PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	as2.AddSite(SiteSpec{VPN: "acme", Name: "east", PE: "as2-PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	as1.ConvergeVPNs()
	as2.ConvergeVPNs()

	if err := x.ConnectVPN("acme", "as1", "as1-ASBR", "as2", "as2-ASBR", 100e6, 2*sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	fwd, err := x.FlowBetween("fwd", "as1", "west", "as2", "east", 80)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := x.FlowBetween("rev", "as2", "east", "as1", "west", 81)
	if err != nil {
		t.Fatal(err)
	}
	return x, fwd, rev
}

func TestInterASVPNDelivery(t *testing.T) {
	x, fwd, rev := buildTwoCarriers(t)
	trafgen.CBR(x.Net, fwd, 200, 10*sim.Millisecond, 0, sim.Second)
	trafgen.CBR(x.Net, rev, 200, 10*sim.Millisecond, 0, sim.Second)
	x.Net.Run()

	if fwd.Stats.Delivered != fwd.Stats.Sent || fwd.Stats.Sent == 0 {
		t.Fatalf("as1->as2 delivery %d/%d", fwd.Stats.Delivered, fwd.Stats.Sent)
	}
	if rev.Stats.Delivered != rev.Stats.Sent {
		t.Fatalf("as2->as1 delivery %d/%d", rev.Stats.Delivered, rev.Stats.Sent)
	}
	if x.AS("as1").IsolationViolations+x.AS("as2").IsolationViolations != 0 {
		t.Fatal("isolation violations across carriers")
	}
	// Labels stayed within each AS: the core of AS2 label-switched the
	// forward traffic (re-labelled at the ASBR), and no label crossed the
	// boundary (the inter-AS hop is plain IP: both ASBRs popped).
	if x.AS("as2").Router("as2-P1").LabelLookups == 0 {
		t.Fatal("AS2 core did not label-switch transit VPN traffic")
	}
}

func TestInterASLatencyCrossesBothCores(t *testing.T) {
	x, fwd, _ := buildTwoCarriers(t)
	trafgen.CBR(x.Net, fwd, 200, 10*sim.Millisecond, 0, sim.Second)
	x.Net.Run()
	// Path: ce - PE1 - P1 - ASBR =2ms= ASBR - P1 - PE1 - ce:
	// 7 hops of 1ms + one of 2ms = 8ms propagation at minimum.
	p50 := fwd.Stats.Latency.Percentile(50)
	if p50 < 8 || p50 > 12 {
		t.Fatalf("cross-carrier p50 = %v ms, want ~8-12", p50)
	}
}

func TestInterASIsolationOtherVPN(t *testing.T) {
	// A second VPN exists only in AS1 and is NOT interconnected: its
	// traffic must not reach AS2 even though the ASBRs are linked.
	x, _, _ := buildTwoCarriers(t)
	as1 := x.AS("as1")
	as1.DefineVPN("solo")
	as1.AddSite(SiteSpec{VPN: "solo", Name: "lonely", PE: "as1-PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.5.0.0/16")}})
	as1.ConvergeVPNs()
	f, _ := as1.FlowBetween("leak", "lonely", "lonely", 80)
	// Aim at AS2's east prefix from the unconnected VPN.
	f.Dst = addr.MustParseIPv4("10.2.0.1")
	as1.ReregisterFlow(f)
	trafgen.CBR(x.Net, f, 200, 10*sim.Millisecond, 0, 200*sim.Millisecond)
	x.Net.Run()
	if f.Stats.Delivered != 0 {
		t.Fatal("unconnected VPN leaked across the interconnect")
	}
}

func TestRefreshInterASPicksUpNewSites(t *testing.T) {
	x, _, _ := buildTwoCarriers(t)
	as1, as2 := x.AS("as1"), x.AS("as2")
	// A new site appears in AS2 after the interconnect was built.
	as2.AddSite(SiteSpec{VPN: "acme", Name: "east2", PE: "as2-PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.3.0.0/16")}})
	as2.ConvergeVPNs()
	x.RefreshInterAS()
	as1.ConvergeVPNs()

	f, err := x.FlowBetween("f2", "as1", "west", "as2", "east2", 82)
	if err != nil {
		t.Fatal(err)
	}
	trafgen.CBR(x.Net, f, 200, 10*sim.Millisecond, 0, 500*sim.Millisecond)
	x.Net.Run()
	if f.Stats.Delivered != f.Stats.Sent || f.Stats.Sent == 0 {
		t.Fatalf("new remote site unreachable after refresh: %d/%d", f.Stats.Delivered, f.Stats.Sent)
	}
}

func TestInterASOptionB(t *testing.T) {
	x := NewInterAS(43,
		[]string{"as1", "as2"},
		[]Config{{Scheduler: SchedHybrid}, {Scheduler: SchedHybrid}})
	as1 := x.AS("as1")
	as1.AddPE("as1-PE1")
	as1.AddP("as1-P1")
	as1.AddPE("as1-ASBR")
	as1.Link("as1-PE1", "as1-P1", 100e6, sim.Millisecond, 1)
	as1.Link("as1-P1", "as1-ASBR", 100e6, sim.Millisecond, 1)
	as1.BuildProvider()
	as2 := x.AS("as2")
	as2.AddPE("as2-ASBR")
	as2.AddP("as2-P1")
	as2.AddPE("as2-PE1")
	as2.Link("as2-ASBR", "as2-P1", 100e6, sim.Millisecond, 1)
	as2.Link("as2-P1", "as2-PE1", 100e6, sim.Millisecond, 1)
	as2.BuildProvider()
	for _, asn := range []string{"as1", "as2"} {
		x.AS(asn).DefineVPN("acme")
		x.AS(asn).DefineVPN("globex")
	}
	as1.AddSite(SiteSpec{VPN: "acme", Name: "west", PE: "as1-PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	as2.AddSite(SiteSpec{VPN: "acme", Name: "east", PE: "as2-PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	as1.AddSite(SiteSpec{VPN: "globex", Name: "g-west", PE: "as1-PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	as2.AddSite(SiteSpec{VPN: "globex", Name: "g-east", PE: "as2-PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	as1.ConvergeVPNs()
	as2.ConvergeVPNs()

	// ONE shared link carries both VPNs (option A would need two).
	if err := x.ConnectVPNOptionB("as1", "as1-ASBR", "as2", "as2-ASBR",
		[]string{"acme", "globex"}, 100e6, 2*sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	fa, _ := x.FlowBetween("fa", "as1", "west", "as2", "east", 80)
	fg, _ := x.FlowBetween("fg", "as1", "g-west", "as2", "g-east", 81)
	rev, _ := x.FlowBetween("rev", "as2", "east", "as1", "west", 82)
	for _, f := range []*trafgen.Flow{fa, fg, rev} {
		trafgen.CBR(x.Net, f, 200, 10*sim.Millisecond, 0, sim.Second)
	}
	x.Net.Run()

	for _, f := range []*trafgen.Flow{fa, fg, rev} {
		if f.Stats.Delivered != f.Stats.Sent || f.Stats.Sent == 0 {
			t.Fatalf("flow %s: %d/%d", f.Stats.Name, f.Stats.Delivered, f.Stats.Sent)
		}
	}
	// Option B keeps the boundary labelled: both ASBRs swap, never popping
	// customer traffic to IP at the border.
	if x.AS("as2").Router("as2-ASBR").LFIB.Swapped == 0 {
		t.Fatal("importing ASBR never swapped")
	}
	if x.AS("as1").Router("as1-ASBR").LFIB.Swapped == 0 {
		t.Fatal("exporting ASBR never swapped")
	}
	if x.AS("as1").IsolationViolations+x.AS("as2").IsolationViolations != 0 {
		t.Fatal("isolation violations with option B")
	}
	// Overlapping address spaces stayed separate across the boundary:
	// acme's 10.2.0.1 and globex's 10.2.0.1 both delivered correctly above.
}

func TestInterASOptionBUnknownVPN(t *testing.T) {
	x := NewInterAS(44, []string{"a", "b"}, []Config{{}, {}})
	x.AS("a").AddPE("a-PE")
	x.AS("a").BuildProvider()
	x.AS("b").AddPE("b-PE")
	x.AS("b").BuildProvider()
	x.AS("a").DefineVPN("v")
	if err := x.ConnectVPNOptionB("a", "a-PE", "b", "b-PE", []string{"v"}, 0, 0); err == nil {
		t.Fatal("unknown VPN accepted")
	}
}
