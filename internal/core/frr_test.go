package core

import (
	"testing"

	"mplsvpn/internal/sim"
	"mplsvpn/internal/trafgen"
)

// frrRing builds PE1 - P1 - P2 - PE2 with a protection arc P1 - P3 - P2:
// the P1-P2 fibre is FRR-protectable via P3.
func frrRing(cfg Config) *Backbone {
	b := NewBackbone(cfg)
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddP("P2")
	b.AddP("P3")
	b.AddPE("PE2")
	b.Link("PE1", "P1", 100e6, sim.Millisecond, 1)
	b.Link("P1", "P2", 100e6, sim.Millisecond, 1)
	b.Link("P2", "PE2", 100e6, sim.Millisecond, 1)
	b.Link("P1", "P3", 100e6, sim.Millisecond, 5)
	b.Link("P3", "P2", 100e6, sim.Millisecond, 5)
	b.BuildProvider()
	return b
}

func frrLoss(t *testing.T, frr bool) (loss float64, viaP3 bool) {
	t.Helper()
	b := frrRing(Config{Seed: 120, FRR: frr})
	twoSites(b)
	f, err := b.FlowBetween("f", "hq", "branch", 80)
	if err != nil {
		t.Fatal(err)
	}
	trafgen.CBR(b.Net, f, 200, 2*sim.Millisecond, 0, 3*sim.Second)
	// Slow head-end convergence: 500 ms. FRR has 1 ms local repair.
	b.E.Schedule(sim.Second, func() { b.FailLink("P1", "P2", 500*sim.Millisecond) })
	b.Net.Run()
	return f.Stats.LossRate(), b.Router("P3").LabelLookups > 0
}

func TestFRRCutsLossToLocalRepairWindow(t *testing.T) {
	noFRR, _ := frrLoss(t, false)
	withFRR, viaP3 := frrLoss(t, true)
	// Unprotected: ~500ms of a 3s flow lost ≈ 17%.
	if noFRR < 0.10 {
		t.Fatalf("unprotected loss only %v: failure not binding", noFRR)
	}
	// FRR: only the ~1ms local repair window (a packet or two).
	if withFRR > 0.01 {
		t.Fatalf("FRR loss = %v, want <1%%", withFRR)
	}
	if !viaP3 {
		t.Fatal("bypass path never carried traffic")
	}
	if withFRR >= noFRR/10 {
		t.Fatalf("FRR improvement too small: %v vs %v", withFRR, noFRR)
	}
}

func TestFRRBypassesPreSignalled(t *testing.T) {
	b := frrRing(Config{Seed: 121, FRR: true})
	// Every core link with an alternative path has a bypass; the
	// PE-adjacent links (PE1-P1 etc.) have none in this topology... in
	// fact PE1-P1's only alternative would traverse PE1 itself, so check
	// the protected middle link explicitly.
	p1, _ := b.G.NodeByName("P1")
	p2, _ := b.G.NodeByName("P2")
	l, _ := b.G.FindLink(p1, p2)
	byp, ok := b.bypasses[l.ID]
	if !ok {
		t.Fatal("P1-P2 has no bypass")
	}
	nodes := byp.Path.Nodes(b.G)
	if len(nodes) != 3 || b.G.Name(nodes[1]) != "P3" {
		t.Fatalf("bypass path = %s", byp.Path.String(b.G))
	}
	// Bypass reserves nothing.
	if l2, _ := b.G.FindLink(p1, b.mustNode("P3")); l2.ReservedBw != 0 {
		t.Fatalf("bypass reserved bandwidth: %v", l2.ReservedBw)
	}
}

func TestFRRThenReconvergeIsClean(t *testing.T) {
	// After the head-end reconverges, traffic keeps flowing (now on the
	// recomputed LSPs) with no leftover detour breakage.
	b := frrRing(Config{Seed: 122, FRR: true})
	twoSites(b)
	f, _ := b.FlowBetween("f", "hq", "branch", 80)
	trafgen.CBR(b.Net, f, 200, 2*sim.Millisecond, 0, 4*sim.Second)
	b.E.Schedule(sim.Second, func() { b.FailLink("P1", "P2", 300*sim.Millisecond) })
	b.Net.Run()
	if f.Stats.LossRate() > 0.01 {
		t.Fatalf("loss across FRR->reconverge handoff = %v", f.Stats.LossRate())
	}
	// Deliveries continued to the end of the run.
	if f.Stats.Delivered < f.Stats.Sent*99/100 {
		t.Fatalf("delivery stalled: %d/%d", f.Stats.Delivered, f.Stats.Sent)
	}
}
