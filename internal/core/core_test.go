package core

import (
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/rsvp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
	"mplsvpn/internal/trafgen"
	"mplsvpn/internal/vpn"
)

// buildSmall builds PE1 - P1 - P2 - PE2 with 10 Mb/s core links.
func buildSmall(cfg Config) *Backbone {
	b := NewBackbone(cfg)
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddP("P2")
	b.AddPE("PE2")
	b.Link("PE1", "P1", 10e6, sim.Millisecond, 1)
	b.Link("P1", "P2", 10e6, sim.Millisecond, 1)
	b.Link("P2", "PE2", 10e6, sim.Millisecond, 1)
	b.BuildProvider()
	return b
}

// twoSites provisions VPN "acme" with a site at each PE.
func twoSites(b *Backbone) {
	b.DefineVPN("acme")
	b.AddSite(SiteSpec{VPN: "acme", Name: "hq", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "acme", Name: "branch", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()
}

func TestEndToEndVPNDelivery(t *testing.T) {
	b := buildSmall(Config{Seed: 1})
	twoSites(b)
	f, err := b.FlowBetween("f", "hq", "branch", 5060)
	if err != nil {
		t.Fatal(err)
	}
	trafgen.CBR(b.Net, f, 160, 20*sim.Millisecond, 0, sim.Second)
	b.Net.Run()
	if f.Stats.Sent == 0 || f.Stats.Delivered != f.Stats.Sent {
		t.Fatalf("sent=%d delivered=%d", f.Stats.Sent, f.Stats.Delivered)
	}
	// Path: ce -> PE1 -> P1 -> P2 -> PE2 -> ce = 5 links ≥ 5ms propagation.
	if p50 := f.Stats.Latency.Percentile(50); p50 < 5 || p50 > 10 {
		t.Fatalf("p50 latency = %v ms", p50)
	}
	if b.IsolationViolations != 0 {
		t.Fatalf("isolation violations: %d", b.IsolationViolations)
	}
}

func TestPacketsAreLabeledInCore(t *testing.T) {
	b := buildSmall(Config{Seed: 1})
	twoSites(b)
	f, _ := b.FlowBetween("f", "hq", "branch", 5060)
	trafgen.CBR(b.Net, f, 160, 20*sim.Millisecond, 0, 100*sim.Millisecond)
	b.Net.Run()
	// Core routers must have label-switched, not IP-routed.
	p1 := b.Router("P1")
	if p1.LabelLookups == 0 {
		t.Fatal("core router never label-switched")
	}
	if p1.IPLookups != 0 {
		t.Fatalf("core router did %d IP lookups on VPN traffic", p1.IPLookups)
	}
}

func TestOverlappingAddressSpaces(t *testing.T) {
	// Both VPNs use 10.1/16 and 10.2/16. Traffic in each stays in each.
	b := buildSmall(Config{Seed: 2})
	b.DefineVPN("alpha")
	b.DefineVPN("beta")
	for _, v := range []string{"alpha", "beta"} {
		b.AddSite(SiteSpec{VPN: v, Name: v + "-west", PE: "PE1",
			Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
		b.AddSite(SiteSpec{VPN: v, Name: v + "-east", PE: "PE2",
			Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	}
	b.ConvergeVPNs()

	fa, _ := b.FlowBetween("fa", "alpha-west", "alpha-east", 80)
	fb, _ := b.FlowBetween("fb", "beta-west", "beta-east", 81)
	trafgen.CBR(b.Net, fa, 500, 10*sim.Millisecond, 0, sim.Second)
	trafgen.CBR(b.Net, fb, 500, 10*sim.Millisecond, 0, sim.Second)
	b.Net.Run()

	if fa.Stats.Delivered != fa.Stats.Sent || fb.Stats.Delivered != fb.Stats.Sent {
		t.Fatalf("deliveries: a=%d/%d b=%d/%d",
			fa.Stats.Delivered, fa.Stats.Sent, fb.Stats.Delivered, fb.Stats.Sent)
	}
	if b.IsolationViolations != 0 {
		t.Fatalf("isolation violations: %d", b.IsolationViolations)
	}
}

func TestVRFStateOnlyWhereNeeded(t *testing.T) {
	// Automatic route filtering: a PE serving only VPN alpha retains no
	// beta routes.
	b := buildSmall(Config{Seed: 3})
	b.DefineVPN("alpha")
	b.DefineVPN("beta")
	b.AddSite(SiteSpec{VPN: "alpha", Name: "a1", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "beta", Name: "b1", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.ConvergeVPNs()
	sp1, _ := b.BGP.Speaker(b.mustNode("PE1"))
	if sp1.Retained != 0 {
		t.Fatalf("PE1 retained %d foreign routes", sp1.Retained)
	}
}

func TestIntraPESites(t *testing.T) {
	b := buildSmall(Config{Seed: 4})
	b.DefineVPN("acme")
	b.AddSite(SiteSpec{VPN: "acme", Name: "s1", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "acme", Name: "s2", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()
	f, _ := b.FlowBetween("f", "s1", "s2", 80)
	trafgen.CBR(b.Net, f, 200, 10*sim.Millisecond, 0, 200*sim.Millisecond)
	b.Net.Run()
	if f.Stats.Delivered != f.Stats.Sent {
		t.Fatalf("intra-PE delivery %d/%d", f.Stats.Delivered, f.Stats.Sent)
	}
}

func TestExtranet(t *testing.T) {
	b := buildSmall(Config{Seed: 5})
	b.DefineVPN("acme")
	b.DefineVPN("partner")
	// Extranet VRFs: acme's sites import partner's RT as well.
	b.DefineVPNWithRTs("bridge",
		[]addr.RouteTarget{b.RTOf("acme"), b.RTOf("partner")},
		[]addr.RouteTarget{b.RTOf("acme"), b.RTOf("partner")})
	b.AddSite(SiteSpec{VPN: "bridge", Name: "shared", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("172.16.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "acme", Name: "acme-1", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "partner", Name: "partner-1", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()

	// Both customers reach the shared extranet site.
	fa, _ := b.FlowBetween("fa", "acme-1", "shared", 80)
	fp, _ := b.FlowBetween("fp", "partner-1", "shared", 81)
	trafgen.CBR(b.Net, fa, 200, 10*sim.Millisecond, 0, 200*sim.Millisecond)
	trafgen.CBR(b.Net, fp, 200, 10*sim.Millisecond, 0, 200*sim.Millisecond)
	b.Net.Run()
	if fa.Stats.Delivered == 0 || fp.Stats.Delivered == 0 {
		t.Fatalf("extranet unreachable: %d, %d", fa.Stats.Delivered, fp.Stats.Delivered)
	}
	// But acme cannot reach partner directly.
	cross, _ := b.FlowBetween("cross", "acme-1", "partner-1", 82)
	sent0 := b.Net.Dropped
	trafgen.CBR(b.Net, cross, 200, 10*sim.Millisecond, 300*sim.Millisecond, 400*sim.Millisecond)
	b.Net.Run()
	if cross.Stats.Delivered != 0 {
		t.Fatal("extranet leaked a direct acme->partner path")
	}
	if b.Net.Dropped <= sent0 {
		t.Fatal("cross-VPN packets neither delivered nor dropped")
	}
}

func TestCrossVPNTrafficDropped(t *testing.T) {
	b := buildSmall(Config{Seed: 6})
	b.DefineVPN("alpha")
	b.DefineVPN("beta")
	b.AddSite(SiteSpec{VPN: "alpha", Name: "a1", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "beta", Name: "b1", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()
	// a1 addresses b1's prefix: no route in alpha's VRF.
	f, _ := b.FlowBetween("f", "a1", "b1", 80)
	trafgen.CBR(b.Net, f, 200, 10*sim.Millisecond, 0, 100*sim.Millisecond)
	b.Net.Run()
	if f.Stats.Delivered != 0 {
		t.Fatal("cross-VPN traffic delivered")
	}
	if b.IsolationViolations != 0 {
		t.Fatalf("violations = %d", b.IsolationViolations)
	}
}

func TestRemoveSiteWithdraws(t *testing.T) {
	b := buildSmall(Config{Seed: 7})
	twoSites(b)
	f, err := b.FlowBetween("f", "hq", "branch", 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveSite("branch"); err != nil {
		t.Fatal(err)
	}
	b.ConvergeVPNs()
	trafgen.CBR(b.Net, f, 200, 10*sim.Millisecond, 0, 100*sim.Millisecond)
	b.Net.Run()
	if f.Stats.Delivered != 0 {
		t.Fatal("traffic delivered to removed site")
	}
	if len(b.Registry.Members("acme")) != 1 {
		t.Fatal("membership not updated")
	}
}

func TestDiscoverySeparation(t *testing.T) {
	b := buildSmall(Config{Seed: 8})
	b.DefineVPN("alpha")
	b.DefineVPN("beta")
	var alphaSeen []string
	b.Registry.Subscribe("alpha", func(e vpn.Event) { alphaSeen = append(alphaSeen, e.Site.Name) })
	b.AddSite(SiteSpec{VPN: "alpha", Name: "a1", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "beta", Name: "b1", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	if len(alphaSeen) != 1 || alphaSeen[0] != "a1" {
		t.Fatalf("alpha discovery saw %v", alphaSeen)
	}
}

func TestQoSProtectsVoiceUnderCongestion(t *testing.T) {
	// Mini-E2: a 10 Mb/s bottleneck loaded with ~14 Mb/s of bulk + 1 Mb/s
	// of voice. With the hybrid scheduler, voice survives; with FIFO, it
	// shares the pain.
	run := func(sched SchedulerKind) (voiceP99 float64, voiceLoss float64) {
		b := buildSmall(Config{Seed: 9, Scheduler: sched})
		twoSites(b)
		voice, _ := b.FlowBetween("voice", "hq", "branch", 5060)
		voice.DSCP = packet.DSCPEF
		bulk, _ := b.FlowBetween("bulk", "hq", "branch", 80)
		bulk.DSCP = packet.DSCPBestEffort
		// Voice: 160B @ 10ms ≈ 150 kb/s. Bulk: 1400B @ 0.8ms ≈ 14.6 Mb/s.
		trafgen.CBR(b.Net, voice, 160, 10*sim.Millisecond, 0, 2*sim.Second)
		trafgen.CBR(b.Net, bulk, 1400, 800*sim.Microsecond, 0, 2*sim.Second)
		b.Net.RunUntil(3 * sim.Second)
		return voice.Stats.Latency.Percentile(99), voice.Stats.LossRate()
	}
	fifoP99, fifoLoss := run(SchedFIFO)
	hybridP99, hybridLoss := run(SchedHybrid)
	if hybridP99 >= fifoP99 {
		t.Fatalf("hybrid voice p99 %.2fms not better than FIFO %.2fms", hybridP99, fifoP99)
	}
	if hybridLoss > 0.001 {
		t.Fatalf("hybrid voice loss = %v", hybridLoss)
	}
	if fifoLoss == 0 && fifoP99 < 2*hybridP99 {
		t.Fatalf("FIFO baseline suspiciously healthy: p99=%v loss=%v", fifoP99, fifoLoss)
	}
}

func TestEXPMappingEndToEnd(t *testing.T) {
	// E7: the DSCP marked at the CE must be restored at the far CE after
	// the MPLS transit, for every class.
	b := buildSmall(Config{Seed: 10})
	twoSites(b)
	got := map[packet.DSCP]int{}
	b.OnDeliver(func(_ topo.NodeID, p *packet.Packet) { got[p.IP.DSCP]++ })
	classes := []packet.DSCP{
		packet.DSCPEF, packet.DSCPAF41, packet.DSCPAF21,
		packet.DSCPBestEffort, packet.DSCPCS1,
	}
	for i, d := range classes {
		f, _ := b.FlowBetween(d.String(), "hq", "branch", uint16(6000+i))
		f.DSCP = d
		trafgen.CBR(b.Net, f, 200, 50*sim.Millisecond, 0, 500*sim.Millisecond)
	}
	b.Net.Run()
	for _, d := range classes {
		if got[d] == 0 {
			t.Fatalf("class %v lost its marking end to end (got %v)", d, got)
		}
	}
}

func TestTELSPSteersTraffic(t *testing.T) {
	// Fish: PE1 -> M -> PE2 (short) vs PE1 -> X -> Y -> PE2 (long).
	b := NewBackbone(Config{Seed: 11})
	b.AddPE("PE1")
	b.AddP("M")
	b.AddP("X")
	b.AddP("Y")
	b.AddPE("PE2")
	b.Link("PE1", "M", 10e6, sim.Millisecond, 1)
	b.Link("M", "PE2", 10e6, sim.Millisecond, 1)
	b.Link("PE1", "X", 10e6, sim.Millisecond, 1)
	b.Link("X", "Y", 10e6, sim.Millisecond, 1)
	b.Link("Y", "PE2", 10e6, sim.Millisecond, 1)
	b.BuildProvider()
	twoSites(b)

	// Pin all traffic to the long path.
	long := b.G.KShortestPaths(b.mustNode("PE1"), b.mustNode("PE2"), 2, topo.Constraints{})[1]
	if _, err := b.SetupTELSP("pin", "PE1", "PE2", 1e6, -1, rsvp.SetupOptions{Explicit: &long}); err != nil {
		t.Fatal(err)
	}
	f, _ := b.FlowBetween("f", "hq", "branch", 80)
	trafgen.CBR(b.Net, f, 200, 10*sim.Millisecond, 0, 200*sim.Millisecond)
	b.Net.Run()
	if f.Stats.Delivered != f.Stats.Sent {
		t.Fatalf("TE path lost traffic: %d/%d", f.Stats.Delivered, f.Stats.Sent)
	}
	// The long path transits X and Y.
	if b.Router("X").LabelLookups == 0 || b.Router("Y").LabelLookups == 0 {
		t.Fatal("traffic did not take the TE path")
	}
	if b.Router("M").LabelLookups != 0 {
		t.Fatal("traffic leaked onto the shortest path")
	}
}

func TestPlainIPWithIPSecMesh(t *testing.T) {
	b := buildSmall(Config{Seed: 12, PlainIP: true})
	b.DefineVPN("acme")
	b.AddSite(SiteSpec{VPN: "acme", Name: "hq", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "acme", Name: "branch", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	if n := b.BuildIPSecMesh("acme", false); n != 1 {
		t.Fatalf("tunnels = %d", n)
	}
	var sawESPInCore, sawBEDSCPInCore bool
	// Observe what P1 sees: encrypted packets with best-effort outer DSCP.
	f, _ := b.FlowBetween("f", "hq", "branch", 5060)
	f.DSCP = packet.DSCPEF
	trafgen.CBR(b.Net, f, 160, 10*sim.Millisecond, 0, 500*sim.Millisecond)
	// Snoop via a wrapper on delivery at the remote CE plus core counters.
	b.Net.OnDrop = func(_ topo.NodeID, p *packet.Packet, reason packet.DropReason) {}
	b.Net.Run()
	_ = sawESPInCore
	_ = sawBEDSCPInCore
	if f.Stats.Delivered != f.Stats.Sent || f.Stats.Sent == 0 {
		t.Fatalf("ipsec mesh delivery %d/%d", f.Stats.Delivered, f.Stats.Sent)
	}
	// The DSCP is restored at decap (delivered packets show EF again).
	b.OnDeliver(func(_ topo.NodeID, p *packet.Packet) {
		if p.IP.DSCP != packet.DSCPEF {
			t.Fatalf("inner DSCP lost: %v", p.IP.DSCP)
		}
	})
}

func TestWithdrawnRoutesLeaveNoStaleState(t *testing.T) {
	b := buildSmall(Config{Seed: 160})
	twoSites(b)
	if err := b.RemoveSite("branch"); err != nil {
		t.Fatal(err)
	}
	b.ConvergeVPNs()
	// The ingress VRF itself must now miss — a clean "no route in VRF",
	// not a push onto a dead label.
	pe1 := b.Router("PE1")
	vrf := pe1.VRFs["acme"]
	if _, ok := vrf.Lookup(addr.MustParseIPv4("10.2.0.1")); ok {
		t.Fatal("withdrawn route still in remote VRF")
	}
	// And the drop is attributed at the ingress PE.
	f, err := b.FlowBetween("f", "hq", "hq", 80)
	if err != nil {
		t.Fatal(err)
	}
	f.Dst = addr.MustParseIPv4("10.2.0.1") // the withdrawn prefix
	b.ReregisterFlow(f)
	trafgen.CBR(b.Net, f, 200, 10*sim.Millisecond, 0, 100*sim.Millisecond)
	before := pe1.DroppedNoRoute
	b.Net.Run()
	if pe1.DroppedNoRoute <= before {
		t.Fatal("drops not at the ingress VRF")
	}
}
