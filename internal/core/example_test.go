package core_test

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/trafgen"
)

// Example provisions the smallest possible MPLS VPN and sends one probe
// across it.
func Example() {
	b := core.NewBackbone(core.Config{Seed: 1})
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddPE("PE2")
	b.Link("PE1", "P1", 100e6, sim.Millisecond, 1)
	b.Link("P1", "PE2", 100e6, sim.Millisecond, 1)
	b.BuildProvider()

	b.DefineVPN("acme")
	b.AddSite(core.SiteSpec{VPN: "acme", Name: "hq", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(core.SiteSpec{VPN: "acme", Name: "branch", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()

	f, _ := b.FlowBetween("probe", "hq", "branch", 7)
	trafgen.CBR(b.Net, f, 64, 10*sim.Millisecond, 0, 100*sim.Millisecond)
	b.Net.Run()
	fmt.Printf("delivered %d/%d\n", f.Stats.Delivered, f.Stats.Sent)
	// Output: delivered 11/11
}

// ExampleBackbone_TraceRoute shows the control-plane traceroute walking
// the label operations hop by hop.
func ExampleBackbone_TraceRoute() {
	b := core.NewBackbone(core.Config{Seed: 1})
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddPE("PE2")
	b.Link("PE1", "P1", 100e6, sim.Millisecond, 1)
	b.Link("P1", "PE2", 100e6, sim.Millisecond, 1)
	b.BuildProvider()
	b.DefineVPN("acme")
	b.AddSite(core.SiteSpec{VPN: "acme", Name: "hq", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(core.SiteSpec{VPN: "acme", Name: "branch", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()

	tr := b.TraceRoute("hq", addr.MustParseIPv4("10.2.0.1"), 0)
	for _, h := range tr.Hops {
		fmt.Printf("%s: %s\n", h.Name, h.Action)
	}
	// Output:
	// ce-hq: ip forward
	// PE1: push 2 label(s), class best-effort
	// P1: pop
	// PE2: pop to IP
	// ce-branch: deliver
}

// ExampleBackbone_SetVPNSLA assigns a QoS level to an entire VPN (§2.2 of
// the paper): all of its traffic is re-marked at the provider edge.
func ExampleBackbone_SetVPNSLA() {
	b := core.NewBackbone(core.Config{Seed: 1})
	b.AddPE("PE1")
	b.AddPE("PE2")
	b.Link("PE1", "PE2", 100e6, sim.Millisecond, 1)
	b.BuildProvider()
	b.DefineVPN("gold-customer")
	b.SetVPNSLA("gold-customer", 1) // qos.ClassVoice
	b.AddSite(core.SiteSpec{VPN: "gold-customer", Name: "a", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(core.SiteSpec{VPN: "gold-customer", Name: "z", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()

	tr := b.TraceRoute("a", addr.MustParseIPv4("10.2.0.1"), 0)
	fmt.Println(tr.Hops[1].Action)
	// Output: push 1 label(s), class voice
}
