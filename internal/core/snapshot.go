// Checkpoint/restore orchestration: Snapshot serializes the backbone's full
// dynamic state — control plane, forwarding tables, in-flight packets,
// traffic sources, telemetry, and every pending timer — and Restore overlays
// it onto a freshly rebuilt scenario.
//
// The architecture is "dynamic-state delta over a deterministic rebuild":
// a snapshot does not serialize topology, policy, or wiring (closures,
// telemetry hooks, schedulers). The restore path re-runs the original
// scenario builder, which re-creates all of that byte-identically, then
// kills the setup events the original run had already executed, overlays
// the serialized dynamic state, and re-arms the dynamic timers with their
// original (time, seq) identities so the event order — and therefore the
// StateDigest, journal, and flow statistics — continues exactly as an
// uninterrupted run's would.
//
// Protocol, on the original run:
//
//	build scenario; b.E.MarkSetup(); run to T; data, err := b.Snapshot(fp)
//
// and on resume:
//
//	rebuild the same scenario; err := b.Restore(data, fp); run onward
//
// Dynamically provisioned sites are assumed to be part of the rebuild
// (provisioning is setup). AIMD bulk sources checkpoint like paced ones:
// their congestion state serializes and the single pending RTO probe
// re-arms through the source registry. Request/response sources still
// schedule untagged closures and make a snapshot fail strictly rather
// than silently dropping their timers.
package core

import (
	"fmt"
	"sort"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/qos"
	"mplsvpn/internal/rsvp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/snapshot"
	"mplsvpn/internal/topo"
	"mplsvpn/internal/trafgen"
)

// Tag kinds for the dynamically scheduled control-plane closures. A pending
// tagged event serializes as (kind, A, B) and the restore re-arms it by
// rebuilding the closure from the tag.
const (
	// tagReconverge is a pending provider reconvergence (no operands).
	tagReconverge uint16 = iota + 1
	// tagLocalRepair is a pending FRR activation; A and B are the failed
	// link's endpoint node IDs.
	tagLocalRepair
	// tagTERetry is a pending TE re-signal; A is the intent's stable id.
	tagTERetry
	// tagDrain is a pending make-before-break drain; A is the drain id.
	tagDrain
)

// tagKindMask extracts the event kind from a Tag.Kind whose high bits carry
// the backbone's tag domain (its AS index in a multi-provider simulation).
const tagKindMask uint16 = 0x000F

// tag builds a control-plane event tag stamped with this backbone's domain,
// so a shared-engine (inter-AS) snapshot can re-arm the event on the right
// AS. Standalone backbones have domain 0 and the Kind is the bare constant.
func (b *Backbone) tag(kind uint16, a, z uint64) sim.Tag {
	return sim.Tag{Kind: kind | b.tagDomain<<4, A: a, B: z}
}

// RegisterSource records a checkpointable traffic source in creation order.
// A snapshot identifies a source's pending self-repost event through this
// registry and a restore re-arms it on the rebuilt source, so every source
// that runs across a checkpoint boundary must be registered — in the same
// order — by both the original builder and the rebuild.
func (b *Backbone) RegisterSource(s trafgen.Source) trafgen.Source {
	if b.srcIndex == nil {
		b.srcIndex = make(map[sim.Action]int)
	}
	if _, dup := b.srcIndex[s]; dup {
		return s
	}
	b.srcIndex[s] = len(b.sources)
	b.sources = append(b.sources, s)
	return s
}

// Section names of the checkpoint container, in file order.
const (
	secManifest  = "manifest"
	secEngine    = "engine"
	secPending   = "pending"
	secTopo      = "topo"
	secIGP       = "igp"
	secLabels    = "labels"
	secBGP       = "bgp"
	secRouters   = "routers"
	secCore      = "core"
	secRegistry  = "registry"
	secNet       = "net"
	secFlows     = "flows"
	secSources   = "sources"
	secTelemetry = "telemetry"
)

// pendingTagged is one serialized dynamic timer awaiting re-arm.
type pendingTagged struct {
	shard int
	at    sim.Time
	seq   uint64
	tag   sim.Tag
}

// pendingSource is one serialized traffic-source repost awaiting re-arm.
type pendingSource struct {
	idx   int
	shard int
	at    sim.Time
	seq   uint64
}

// Snapshot serializes the backbone's dynamic state at the current virtual
// time. scenario is the caller's fingerprint of the scenario construction
// (builder name, parameters, shard count); Restore refuses a checkpoint
// whose fingerprint differs. The builder must have called b.E.MarkSetup()
// after construction, or every pre-scheduled scan and tick is misclassified
// as unserializable.
func (b *Backbone) Snapshot(scenario string) ([]byte, error) {
	if !b.built {
		return nil, fmt.Errorf("core: snapshot before BuildProvider")
	}

	f := snapshot.NewFile()
	scheds := b.E.Schedulers()

	var w snapshot.Writer
	w.Str(scenario)
	w.U64(b.Cfg.Seed)
	w.I64(int64(b.E.Now()))
	w.U64(uint64(len(scheds)))
	w.Bool(b.Cfg.PlainIP)
	f.Add(secManifest, w.Data())

	w = snapshot.Writer{}
	saveSchedState(&w, b.E)
	b.saveAuxRngs(&w)
	f.Add(secEngine, w.Data())

	pending, err := b.classifyPending()
	if err != nil {
		return nil, err
	}
	f.Add(secPending, pending)

	f.Add(secTopo, saveTopoState(b.G))

	b.addControlSections(f, "")

	w = snapshot.Writer{}
	b.Net.SaveState(&w)
	f.Add(secNet, w.Data())

	b.addTrafficSections(f, "")

	return f.Encode(), nil
}

// saveSchedState serializes the engine's scheduler clocks/sequence counters
// and the engine-wide random stream — the state shared by every backbone on
// the engine.
func saveSchedState(w *snapshot.Writer, e *sim.Engine) {
	for _, s := range e.Schedulers() {
		w.I64(int64(s))
		w.I64(int64(e.ClockOf(s)))
		w.U64(e.Seq(s))
		w.U64(e.ExecutedOn(s))
	}
	w.U64(e.Rand().State())
}

// loadSchedState is the decode side of saveSchedState.
func loadSchedState(r *snapshot.Reader, e *sim.Engine) error {
	for range e.Schedulers() {
		s := int(r.I64())
		clock := sim.Time(r.I64())
		seq := r.U64()
		executed := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		e.RestoreClock(s, clock)
		e.RestoreSeq(s, seq)
		e.RestoreExecuted(s, executed)
	}
	e.Rand().SetState(r.U64())
	return r.Err()
}

// saveAuxRngs serializes the backbone's forked random streams (control-plane
// loss, TE retry jitter).
func (b *Backbone) saveAuxRngs(w *snapshot.Writer) {
	w.Bool(b.ctrlRng != nil)
	if b.ctrlRng != nil {
		w.U64(b.ctrlRng.State())
	}
	w.Bool(b.res != nil)
	if b.res != nil {
		w.U64(b.res.rng.State())
	}
}

// loadAuxRngs is the decode side of saveAuxRngs.
func (b *Backbone) loadAuxRngs(r *snapshot.Reader) error {
	hasCtrl := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasCtrl {
		if b.ctrlRng == nil {
			return fmt.Errorf("%w: control-plane loss rng in checkpoint but not in scenario", snapshot.ErrMismatch)
		}
		b.ctrlRng.SetState(r.U64())
	}
	hasRes := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasRes != (b.res != nil) {
		return fmt.Errorf("%w: resilience in checkpoint=%v, scenario=%v", snapshot.ErrMismatch, hasRes, b.res != nil)
	}
	if b.res != nil {
		b.res.rng.SetState(r.U64())
	}
	return r.Err()
}

// saveTopoState serializes the graph's dynamic link state.
func saveTopoState(g *topo.Graph) []byte {
	var w snapshot.Writer
	w.U64(uint64(g.NumLinks()))
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topo.LinkID(i))
		w.Bool(l.Down)
		w.F64(l.ReservedBw)
	}
	return w.Data()
}

// loadTopoState is the decode side of saveTopoState.
func loadTopoState(r *snapshot.Reader, g *topo.Graph) error {
	nl := r.Count(9)
	if nl != g.NumLinks() {
		return fmt.Errorf("%w: %d links in checkpoint, %d in scenario", snapshot.ErrMismatch, nl, g.NumLinks())
	}
	for i := 0; i < nl; i++ {
		l := g.Link(topo.LinkID(i))
		l.Down = r.Bool()
		l.ReservedBw = r.F64()
	}
	return r.Err()
}

// addControlSections emits the backbone's control-plane sections (IGP,
// label plane, BGP, routers, core bookkeeping, registry) under a section
// name prefix — empty for a standalone snapshot, "<as>/" per AS in an
// inter-AS one.
func (b *Backbone) addControlSections(f *snapshot.File, prefix string) {
	var w snapshot.Writer
	b.IGP.SaveState(&w)
	f.Add(prefix+secIGP, w.Data())

	w = snapshot.Writer{}
	nodes := sortedNodeIDs(b.allocs)
	w.U64(uint64(len(nodes)))
	for _, n := range nodes {
		w.I64(int64(n))
		b.allocs[n].SaveState(&w)
	}
	w.Bool(b.LDP != nil)
	if b.LDP != nil {
		b.LDP.SaveState(&w)
	}
	w.Bool(b.RSVP != nil)
	if b.RSVP != nil {
		b.RSVP.SaveState(&w)
	}
	f.Add(prefix+secLabels, w.Data())

	w = snapshot.Writer{}
	b.BGP.SaveState(&w)
	f.Add(prefix+secBGP, w.Data())

	w = snapshot.Writer{}
	rnodes := sortedNodeIDs(b.routers)
	w.U64(uint64(len(rnodes)))
	for _, n := range rnodes {
		w.I64(int64(n))
		b.routers[n].SaveState(&w)
	}
	f.Add(prefix+secRouters, w.Data())

	w = snapshot.Writer{}
	b.saveCoreState(&w)
	f.Add(prefix+secCore, w.Data())

	w = snapshot.Writer{}
	b.Registry.SaveState(&w)
	f.Add(prefix+secRegistry, w.Data())
}

// addTrafficSections emits the backbone's traffic-plane sections (flow
// stats, sources, telemetry) under a section name prefix.
func (b *Backbone) addTrafficSections(f *snapshot.File, prefix string) {
	var w snapshot.Writer
	keys := make([]packet.FlowKey, 0, len(b.flows))
	for k := range b.flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return flowKeyLess(keys[i], keys[j]) })
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		saveFlowKey(&w, k)
		b.flows[k].SaveState(&w)
	}
	f.Add(prefix+secFlows, w.Data())

	w = snapshot.Writer{}
	w.U64(uint64(len(b.sources)))
	for _, s := range b.sources {
		s.SaveState(&w)
	}
	f.Add(prefix+secSources, w.Data())

	w = snapshot.Writer{}
	w.Bool(b.tel != nil)
	if b.tel != nil {
		b.tel.Reg.SaveState(&w)
		b.tel.Journal.SaveState(&w)
		b.tel.Flows.SaveState(&w)
		w.Bool(b.tel.Watcher != nil)
		if b.tel.Watcher != nil {
			b.tel.Watcher.SaveState(&w)
		}
	}
	f.Add(prefix+secTelemetry, w.Data())
}

// classifyPending walks the event heaps and serializes every pending event
// by class: setup events as (shard, seq) keep-entries, tagged control-plane
// timers as re-arm records, registered source reposts by registry index.
// Data-plane events are netsim's to serialize; anything else is a strict
// error naming the offender.
func (b *Backbone) classifyPending() ([]byte, error) {
	return classifyPendingOn(b.E, b.Net.OwnsAction, func(a sim.Action) (int, bool) {
		idx, ok := b.srcIndex[a]
		return idx, ok
	})
}

// classifyPendingOn is classifyPending over an explicit engine, data-plane
// ownership test, and source resolver, so an inter-AS snapshot can classify
// a shared engine's heap against the union of every AS's source registry.
func classifyPendingOn(e *sim.Engine, owns func(sim.Action) bool, srcOf func(sim.Action) (int, bool)) ([]byte, error) {
	var setup [][2]uint64 // shard+1 (to keep GlobalBand=-1 unsigned-safe), seq
	var tagged []pendingTagged
	var srcs []pendingSource
	var unknown []string
	e.WalkPending(func(pe sim.PendingEvent) {
		switch {
		case pe.Setup:
			setup = append(setup, [2]uint64{uint64(pe.Shard + 1), pe.Seq})
		case pe.Tag.Kind != 0:
			tagged = append(tagged, pendingTagged{shard: pe.Shard, at: pe.At, seq: pe.Seq, tag: pe.Tag})
		case pe.Act != nil && owns(pe.Act):
			// In-flight data plane: serialized and re-armed by netsim.
		case pe.Act != nil:
			if idx, ok := srcOf(pe.Act); ok {
				srcs = append(srcs, pendingSource{idx: idx, shard: pe.Shard, at: pe.At, seq: pe.Seq})
			} else {
				unknown = append(unknown, fmt.Sprintf("action %T at %v", pe.Act, pe.At))
			}
		default:
			unknown = append(unknown, fmt.Sprintf("untagged closure at %v (seq %d)", pe.At, pe.Seq))
		}
	})
	if len(unknown) > 0 {
		return nil, fmt.Errorf("core: snapshot cannot serialize %d pending event(s): %v", len(unknown), unknown)
	}

	// Canonical order: heap layout depends on push/pop history, so two
	// snapshots of identical simulation state could otherwise serialize
	// their pending events differently. Sorting by (shard, seq) makes the
	// encoding a pure function of state — snapshot(restore(s)) == s.
	sort.Slice(setup, func(i, j int) bool {
		if setup[i][0] != setup[j][0] {
			return setup[i][0] < setup[j][0]
		}
		return setup[i][1] < setup[j][1]
	})
	sort.Slice(tagged, func(i, j int) bool {
		if tagged[i].shard != tagged[j].shard {
			return tagged[i].shard < tagged[j].shard
		}
		return tagged[i].seq < tagged[j].seq
	})
	sort.Slice(srcs, func(i, j int) bool {
		if srcs[i].shard != srcs[j].shard {
			return srcs[i].shard < srcs[j].shard
		}
		return srcs[i].seq < srcs[j].seq
	})

	var w snapshot.Writer
	w.U64(uint64(len(setup)))
	for _, s := range setup {
		w.U64(s[0])
		w.U64(s[1])
	}
	w.U64(uint64(len(tagged)))
	for _, t := range tagged {
		w.I64(int64(t.shard))
		w.I64(int64(t.at))
		w.U64(t.seq)
		w.U64(uint64(t.tag.Kind))
		w.U64(t.tag.A)
		w.U64(t.tag.B)
	}
	w.U64(uint64(len(srcs)))
	for _, s := range srcs {
		w.I64(int64(s.idx))
		w.I64(int64(s.shard))
		w.I64(int64(s.at))
		w.U64(s.seq)
	}
	return w.Data(), nil
}

// saveCoreState serializes the backbone's own dynamic bookkeeping: fault
// maps, TE intents, bypass bindings, survivability sessions, and the
// telemetry utilization cache.
func (b *Backbone) saveCoreState(w *snapshot.Writer) {
	w.I64(int64(b.IsolationViolations))
	w.I64(int64(b.teReqSeq))

	pairs := make([]linkPair, 0, len(b.failedLinks))
	for p := range b.failedLinks {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].lo != pairs[j].lo {
			return pairs[i].lo < pairs[j].lo
		}
		return pairs[i].hi < pairs[j].hi
	})
	w.U64(uint64(len(pairs)))
	for _, p := range pairs {
		w.I64(int64(p.lo))
		w.I64(int64(p.hi))
	}

	saveNodeSet(w, b.nodeDown)
	saveNodeSet(w, b.ctrlDown)

	cut := make([]string, 0, len(b.cutSites))
	for s := range b.cutSites {
		cut = append(cut, s)
	}
	sort.Strings(cut)
	w.U64(uint64(len(cut)))
	for _, s := range cut {
		w.Str(s)
	}

	w.U64(uint64(len(b.teRequests)))
	for _, req := range b.teRequests {
		w.I64(int64(req.id))
		w.Str(req.name)
		w.I64(int64(req.ingress))
		w.I64(int64(req.egress))
		w.Str(req.vpn)
		w.F64(req.bandwidth)
		w.I64(int64(req.class))
		saveSetupOptions(w, req.opt)
		lspID := -1
		if req.lsp != nil {
			lspID = req.lsp.ID
		}
		w.I64(int64(lspID))
		w.F64(req.fullBandwidth)
		w.I64(int64(req.fullClassType))
		w.Bool(req.degraded)
		w.I64(int64(req.attempts))
		w.Bool(req.retryPending)
		w.Bool(req.removed)
	}

	w.Bool(b.bypasses != nil)
	if b.bypasses != nil {
		lids := make([]topo.LinkID, 0, len(b.bypasses))
		for l := range b.bypasses {
			lids = append(lids, l)
		}
		sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
		w.U64(uint64(len(lids)))
		for _, l := range lids {
			w.I64(int64(l))
			w.I64(int64(b.bypasses[l].ID))
		}
	}

	w.Bool(b.surv != nil)
	if b.surv != nil {
		s := b.surv
		w.I64(int64(s.flaps))
		w.I64(int64(s.restores))
		w.I64(int64(s.staleSwept))
		w.I64(int64(s.withdrawn))
		w.I64(int64(s.damped))
		w.I64(int64(s.reused))
		nodes := sortedNodeIDs(s.sess)
		w.U64(uint64(len(nodes)))
		for _, n := range nodes {
			st := s.sess[n]
			w.I64(int64(n))
			w.I64(int64(st.state))
			w.I64(int64(st.misses))
			w.I64(int64(st.grDeadline))
		}
	}

	w.U64(uint64(len(b.telPrevTx)))
	for i := range b.telPrevTx {
		w.I64(b.telPrevTx[i])
		w.F64(b.telLastUtil[i])
	}

	// Delta-reconvergence queue: the single-link flaps awaiting the next
	// reconvergence, in arrival order (it is a queue, not a set), and the
	// wider-event marker that forces the full rebuild. A checkpoint taken
	// inside a detection window must resume with the same reconvergence
	// mode or the IGP message counters diverge from the uninterrupted run.
	w.U64(uint64(len(b.pendingLinks)))
	for _, p := range b.pendingLinks {
		w.I64(int64(p.lo))
		w.I64(int64(p.hi))
	}
	w.Bool(b.pendingFull)
}

// Restore overlays a checkpoint onto a freshly rebuilt scenario: same
// builder, same seed, same sharding, nothing run yet. On any error the
// backbone must be discarded and rebuilt — a failed restore does not roll
// back (the CRC check up front means that only happens on a scenario
// mismatch, never on a corrupt file).
func (b *Backbone) Restore(data []byte, scenario string) error {
	f, err := snapshot.Decode(data)
	if err != nil {
		return err
	}
	sec := func(name string) (*snapshot.Reader, error) {
		p, ok := f.Section(name)
		if !ok {
			return nil, fmt.Errorf("%w: missing section %q", snapshot.ErrCorrupt, name)
		}
		return snapshot.NewReader(p), nil
	}

	r, err := sec(secManifest)
	if err != nil {
		return err
	}
	wantScenario := r.Str()
	wantSeed := r.U64()
	snapT := sim.Time(r.I64())
	wantScheds := r.U64()
	wantPlain := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	scheds := b.E.Schedulers()
	switch {
	case wantScenario != scenario:
		return fmt.Errorf("%w: scenario %q, checkpoint %q", snapshot.ErrMismatch, scenario, wantScenario)
	case wantSeed != b.Cfg.Seed:
		return fmt.Errorf("%w: seed %d, checkpoint %d", snapshot.ErrMismatch, b.Cfg.Seed, wantSeed)
	case wantScheds != uint64(len(scheds)):
		return fmt.Errorf("%w: %d schedulers, checkpoint %d", snapshot.ErrMismatch, len(scheds), wantScheds)
	case wantPlain != b.Cfg.PlainIP:
		return fmt.Errorf("%w: PlainIP=%v, checkpoint %v", snapshot.ErrMismatch, b.Cfg.PlainIP, wantPlain)
	case !b.built:
		return fmt.Errorf("%w: restore before BuildProvider", snapshot.ErrMismatch)
	}
	_ = snapT

	// Kill the setup events the original run had already consumed. MarkSetup
	// is idempotent here: nothing has run, so the watermark equals the
	// builder's.
	b.E.MarkSetup()
	pr, err := sec(secPending)
	if err != nil {
		return err
	}
	keep, tagged, srcEvents, err := loadPending(pr)
	if err != nil {
		return err
	}
	b.E.FilterPending(func(shard int, seq uint64) bool {
		return keep[[2]uint64{uint64(shard + 1), seq}]
	})

	if r, err = sec(secTopo); err != nil {
		return err
	}
	if err := loadTopoState(r, b.G); err != nil {
		return err
	}

	if err := b.restoreControlSections(sec, ""); err != nil {
		return err
	}

	if r, err = sec(secNet); err != nil {
		return err
	}
	if err := b.Net.LoadState(r); err != nil {
		return err
	}

	if err := b.restoreTrafficSections(sec, ""); err != nil {
		return err
	}

	// Re-arm the dynamic timers and source reposts with their original
	// identities, then advance the schedulers to the snapshot instant.
	for _, t := range tagged {
		fn, err := b.rearmOwnTagged(t.tag)
		if err != nil {
			return err
		}
		b.E.RestoreEvent(t.shard, t.at, t.seq, t.tag, fn)
	}
	if err := b.rearmSources(srcEvents); err != nil {
		return err
	}

	if r, err = sec(secEngine); err != nil {
		return err
	}
	if err := loadSchedState(r, b.E); err != nil {
		return err
	}
	return b.loadAuxRngs(r)
}

// loadPending is the decode side of classifyPendingOn.
func loadPending(pr *snapshot.Reader) (map[[2]uint64]bool, []pendingTagged, []pendingSource, error) {
	ns := pr.Count(2)
	keep := make(map[[2]uint64]bool, ns)
	for i := 0; i < ns; i++ {
		keep[[2]uint64{pr.U64(), pr.U64()}] = true
	}
	nt := pr.Count(6)
	tagged := make([]pendingTagged, 0, nt)
	for i := 0; i < nt; i++ {
		t := pendingTagged{
			shard: int(pr.I64()),
			at:    sim.Time(pr.I64()),
			seq:   pr.U64(),
		}
		t.tag = sim.Tag{Kind: uint16(pr.U64()), A: pr.U64(), B: pr.U64()}
		tagged = append(tagged, t)
	}
	nsrc := pr.Count(4)
	srcEvents := make([]pendingSource, 0, nsrc)
	for i := 0; i < nsrc; i++ {
		srcEvents = append(srcEvents, pendingSource{
			idx:   int(pr.I64()),
			shard: int(pr.I64()),
			at:    sim.Time(pr.I64()),
			seq:   pr.U64(),
		})
	}
	return keep, tagged, srcEvents, pr.Err()
}

// rearmOwnTagged rebuilds the closure for a tag that belongs to this
// backbone, resolving TE intents through the freshly restored request list.
func (b *Backbone) rearmOwnTagged(tag sim.Tag) (func(), error) {
	reqByID := make(map[int]*teRequest, len(b.teRequests))
	for _, req := range b.teRequests {
		reqByID[req.id] = req
	}
	return b.rearmTagged(tag, reqByID)
}

// rearmSources re-arms serialized source repost events against the
// registered source list.
func (b *Backbone) rearmSources(srcEvents []pendingSource) error {
	for _, s := range srcEvents {
		if s.idx < 0 || s.idx >= len(b.sources) {
			return fmt.Errorf("%w: pending event for source %d, only %d registered", snapshot.ErrMismatch, s.idx, len(b.sources))
		}
		b.E.RestoreAction(s.shard, s.at, s.seq, b.sources[s.idx])
	}
	return nil
}

// restoreControlSections is the decode side of addControlSections.
func (b *Backbone) restoreControlSections(sec func(string) (*snapshot.Reader, error), prefix string) error {
	r, err := sec(prefix + secIGP)
	if err != nil {
		return err
	}
	if err := b.IGP.LoadState(r); err != nil {
		return err
	}

	if r, err = sec(prefix + secLabels); err != nil {
		return err
	}
	na := r.Count(2)
	for i := 0; i < na; i++ {
		n := topo.NodeID(r.I64())
		a, ok := b.allocs[n]
		if !ok {
			return fmt.Errorf("%w: allocator for unknown node %d", snapshot.ErrMismatch, n)
		}
		if err := a.LoadState(r); err != nil {
			return err
		}
	}
	hasLDP := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasLDP != (b.LDP != nil) {
		return fmt.Errorf("%w: LDP in checkpoint=%v, scenario=%v", snapshot.ErrMismatch, hasLDP, b.LDP != nil)
	}
	if b.LDP != nil {
		if err := b.LDP.LoadState(r); err != nil {
			return err
		}
	}
	hasRSVP := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasRSVP != (b.RSVP != nil) {
		return fmt.Errorf("%w: RSVP in checkpoint=%v, scenario=%v", snapshot.ErrMismatch, hasRSVP, b.RSVP != nil)
	}
	if b.RSVP != nil {
		if err := b.RSVP.LoadState(r); err != nil {
			return err
		}
	}

	if r, err = sec(prefix + secBGP); err != nil {
		return err
	}
	if err := b.BGP.LoadState(r); err != nil {
		return err
	}

	if r, err = sec(prefix + secRouters); err != nil {
		return err
	}
	nr := r.Count(2)
	for i := 0; i < nr; i++ {
		n := topo.NodeID(r.I64())
		rt, ok := b.routers[n]
		if !ok {
			return fmt.Errorf("%w: router state for unknown node %d", snapshot.ErrMismatch, n)
		}
		if err := rt.LoadState(r); err != nil {
			return err
		}
	}

	if r, err = sec(prefix + secCore); err != nil {
		return err
	}
	if err := b.loadCoreState(r); err != nil {
		return err
	}

	if r, err = sec(prefix + secRegistry); err != nil {
		return err
	}
	return b.Registry.LoadState(r)
}

// restoreTrafficSections is the decode side of addTrafficSections.
func (b *Backbone) restoreTrafficSections(sec func(string) (*snapshot.Reader, error), prefix string) error {
	r, err := sec(prefix + secFlows)
	if err != nil {
		return err
	}
	nf := r.Count(8)
	for i := 0; i < nf; i++ {
		k := loadFlowKey(r)
		if r.Err() != nil {
			return r.Err()
		}
		fl, ok := b.flows[k]
		if !ok {
			return fmt.Errorf("%w: flow %v not registered by the rebuild", snapshot.ErrMismatch, k)
		}
		if err := fl.LoadState(r); err != nil {
			return err
		}
	}

	if r, err = sec(prefix + secSources); err != nil {
		return err
	}
	nsources := r.Count(1)
	if nsources != len(b.sources) {
		return fmt.Errorf("%w: %d sources in checkpoint, %d registered", snapshot.ErrMismatch, nsources, len(b.sources))
	}
	for _, s := range b.sources {
		if err := s.LoadState(r); err != nil {
			return err
		}
	}

	if r, err = sec(prefix + secTelemetry); err != nil {
		return err
	}
	hasTel := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasTel != (b.tel != nil) {
		return fmt.Errorf("%w: telemetry in checkpoint=%v, scenario=%v", snapshot.ErrMismatch, hasTel, b.tel != nil)
	}
	if b.tel != nil {
		if err := b.tel.Reg.LoadState(r); err != nil {
			return err
		}
		if err := b.tel.Journal.LoadState(r); err != nil {
			return err
		}
		if err := b.tel.Flows.LoadState(r); err != nil {
			return err
		}
		hasWatcher := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if hasWatcher != (b.tel.Watcher != nil) {
			return fmt.Errorf("%w: SLA watcher in checkpoint=%v, scenario=%v", snapshot.ErrMismatch, hasWatcher, b.tel.Watcher != nil)
		}
		if b.tel.Watcher != nil {
			if err := b.tel.Watcher.LoadState(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// rearmTagged rebuilds the closure a serialized tag stands for. The domain
// bits are masked off: the caller has already routed the tag to the right
// backbone.
func (b *Backbone) rearmTagged(tag sim.Tag, reqByID map[int]*teRequest) (func(), error) {
	switch tag.Kind & tagKindMask {
	case tagReconverge:
		return b.reconvergeProvider, nil
	case tagLocalRepair:
		na, nz := topo.NodeID(tag.A), topo.NodeID(tag.B)
		return func() { b.localRepair(na, nz) }, nil
	case tagTERetry:
		req, ok := reqByID[int(tag.A)]
		if !ok {
			// The intent was torn down between checkpoint and crash replay
			// semantics never see this, but a no-op matches retrySignal's own
			// handling of removed intents.
			return func() {}, nil
		}
		return func() { b.retrySignal(req) }, nil
	case tagDrain:
		id := int(tag.A)
		return func() {
			if b.RSVP != nil {
				b.RSVP.RunDrain(id)
			}
		}, nil
	}
	return nil, fmt.Errorf("%w: unknown event tag kind %d", snapshot.ErrCorrupt, tag.Kind)
}

// loadCoreState is the decode side of saveCoreState.
func (b *Backbone) loadCoreState(r *snapshot.Reader) error {
	b.IsolationViolations = int(r.I64())
	b.teReqSeq = int(r.I64())

	np := r.Count(2)
	b.failedLinks = make(map[linkPair]bool, np)
	for i := 0; i < np; i++ {
		b.failedLinks[linkPair{topo.NodeID(r.I64()), topo.NodeID(r.I64())}] = true
	}

	var err error
	if b.nodeDown, err = loadNodeSet(r); err != nil {
		return err
	}
	if b.ctrlDown, err = loadNodeSet(r); err != nil {
		return err
	}

	nc := r.Count(1)
	b.cutSites = make(map[string]bool, nc)
	for i := 0; i < nc; i++ {
		b.cutSites[r.Str()] = true
	}

	nreq := r.Count(16)
	b.teRequests = make([]*teRequest, 0, nreq)
	for i := 0; i < nreq; i++ {
		req := &teRequest{
			id:      int(r.I64()),
			name:    r.Str(),
			ingress: topo.NodeID(r.I64()),
			egress:  topo.NodeID(r.I64()),
			vpn:     r.Str(),
		}
		req.bandwidth = r.F64()
		req.class = qos.Class(r.I64())
		opt, err := loadSetupOptions(r)
		if err != nil {
			return err
		}
		req.opt = opt
		lspID := int(r.I64())
		req.fullBandwidth = r.F64()
		req.fullClassType = rsvp.ClassType(r.I64())
		req.degraded = r.Bool()
		req.attempts = int(r.I64())
		req.retryPending = r.Bool()
		req.removed = r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if lspID >= 0 {
			l, ok := b.RSVP.Get(lspID)
			if !ok {
				return fmt.Errorf("%w: TE intent %q references LSP %d absent from the checkpoint", snapshot.ErrCorrupt, req.name, lspID)
			}
			req.lsp = l
		}
		b.teRequests = append(b.teRequests, req)
	}

	hasByp := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	b.bypasses = nil
	if hasByp {
		nb := r.Count(2)
		b.bypasses = make(map[topo.LinkID]*rsvp.LSP, nb)
		for i := 0; i < nb; i++ {
			lid := topo.LinkID(r.I64())
			lspID := int(r.I64())
			if r.Err() != nil {
				return r.Err()
			}
			l, ok := b.RSVP.Get(lspID)
			if !ok {
				return fmt.Errorf("%w: bypass for link %d references LSP %d absent from the checkpoint", snapshot.ErrCorrupt, lid, lspID)
			}
			b.bypasses[lid] = l
		}
	}

	hasSurv := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasSurv != (b.surv != nil) {
		return fmt.Errorf("%w: survivability in checkpoint=%v, scenario=%v", snapshot.ErrMismatch, hasSurv, b.surv != nil)
	}
	if b.surv != nil {
		s := b.surv
		s.flaps = int(r.I64())
		s.restores = int(r.I64())
		s.staleSwept = int(r.I64())
		s.withdrawn = int(r.I64())
		s.damped = int(r.I64())
		s.reused = int(r.I64())
		nsess := r.Count(4)
		s.sess = make(map[topo.NodeID]*survSession, nsess)
		for i := 0; i < nsess; i++ {
			n := topo.NodeID(r.I64())
			s.sess[n] = &survSession{
				state:      survState(r.I64()),
				misses:     int(r.I64()),
				grDeadline: sim.Time(r.I64()),
			}
		}
	}

	nu := r.Count(9)
	b.telPrevTx = make([]int64, nu)
	b.telLastUtil = make([]float64, nu)
	for i := 0; i < nu; i++ {
		b.telPrevTx[i] = r.I64()
		b.telLastUtil[i] = r.F64()
	}

	npl := r.Count(2)
	b.pendingLinks = b.pendingLinks[:0]
	for i := 0; i < npl; i++ {
		b.pendingLinks = append(b.pendingLinks, linkPair{topo.NodeID(r.I64()), topo.NodeID(r.I64())})
	}
	b.pendingFull = r.Bool()

	// The TE plain-path cache is derived state: anything the builder
	// pre-computed reflects pre-restore topology, so it goes.
	b.dropTECache()
	return r.Err()
}

func saveSetupOptions(w *snapshot.Writer, opt rsvp.SetupOptions) {
	w.Bool(opt.Explicit != nil)
	if opt.Explicit != nil {
		w.U64(uint64(len(opt.Explicit.Links)))
		for _, l := range opt.Explicit.Links {
			w.I64(int64(l))
		}
	}
	w.I64(int64(opt.SetupPri))
	w.I64(int64(opt.HoldPri))
	w.I64(int64(opt.ClassType))
	avoid := make([]topo.LinkID, 0, len(opt.Avoid))
	for l := range opt.Avoid {
		avoid = append(avoid, l)
	}
	sort.Slice(avoid, func(i, j int) bool { return avoid[i] < avoid[j] })
	w.U64(uint64(len(avoid)))
	for _, l := range avoid {
		w.I64(int64(l))
	}
}

func loadSetupOptions(r *snapshot.Reader) (rsvp.SetupOptions, error) {
	var opt rsvp.SetupOptions
	hasExplicit := r.Bool()
	if r.Err() != nil {
		return opt, r.Err()
	}
	if hasExplicit {
		n := r.Count(1)
		p := &topo.Path{Links: make([]topo.LinkID, 0, n)}
		for i := 0; i < n; i++ {
			p.Links = append(p.Links, topo.LinkID(r.I64()))
		}
		opt.Explicit = p
	}
	opt.SetupPri = int(r.I64())
	opt.HoldPri = int(r.I64())
	opt.ClassType = rsvp.ClassType(r.I64())
	na := r.Count(1)
	if na > 0 {
		opt.Avoid = make(map[topo.LinkID]bool, na)
		for i := 0; i < na; i++ {
			opt.Avoid[topo.LinkID(r.I64())] = true
		}
	}
	return opt, r.Err()
}

func saveFlowKey(w *snapshot.Writer, k packet.FlowKey) {
	w.U64(uint64(k.Src))
	w.U64(uint64(k.Dst))
	w.U64(uint64(k.SrcPort))
	w.U64(uint64(k.DstPort))
	w.U64(uint64(k.Protocol))
}

func loadFlowKey(r *snapshot.Reader) packet.FlowKey {
	return packet.FlowKey{
		Src:      addr.IPv4(uint32(r.U64())),
		Dst:      addr.IPv4(uint32(r.U64())),
		SrcPort:  uint16(r.U64()),
		DstPort:  uint16(r.U64()),
		Protocol: uint8(r.U64()),
	}
}

// flowKeyLess orders flow keys for deterministic serialization.
func flowKeyLess(a, b packet.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Protocol < b.Protocol
}

func sortedNodeIDs[V any](m map[topo.NodeID]V) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func saveNodeSet(w *snapshot.Writer, set map[topo.NodeID]bool) {
	nodes := sortedNodeIDs(set)
	w.U64(uint64(len(nodes)))
	for _, n := range nodes {
		w.I64(int64(n))
	}
}

func loadNodeSet(r *snapshot.Reader) (map[topo.NodeID]bool, error) {
	n := r.Count(1)
	set := make(map[topo.NodeID]bool, n)
	for i := 0; i < n; i++ {
		set[topo.NodeID(r.I64())] = true
	}
	return set, r.Err()
}
