package core

import (
	"strings"
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/rsvp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
	"mplsvpn/internal/trafgen"
)

// TestAIMDAdaptsToBottleneck drives a greedy AIMD bulk source across the
// small backbone's 10 Mb/s links and checks it converges to roughly link
// rate without catastrophic loss — congestion control probing, backing
// off on queue drops, and stabilizing.
func TestAIMDAdaptsToBottleneck(t *testing.T) {
	b := buildSmall(Config{Seed: 90, Scheduler: SchedHybrid})
	twoSites(b)
	f, _ := b.FlowBetween("bulk", "hq", "branch", 80)
	src := b.AttachAIMD(f, 1400, 10*sim.Second)
	src.Start(0)
	b.Net.RunUntil(11 * sim.Second)

	if f.Stats.Sent < 100 {
		t.Fatalf("AIMD barely transmitted: %d packets", f.Stats.Sent)
	}
	thr := f.Stats.ThroughputBps()
	// Goodput should reach a meaningful fraction of the 10 Mb/s path but
	// cannot exceed it.
	if thr < 2e6 {
		t.Fatalf("AIMD goodput = %.0f b/s, want > 2 Mb/s", thr)
	}
	if thr > 10.5e6 {
		t.Fatalf("AIMD goodput = %.0f b/s exceeds link rate", thr)
	}
	// Loss stays moderate: AIMD backs off instead of blasting.
	if f.Stats.LossRate() > 0.15 {
		t.Fatalf("AIMD loss = %v", f.Stats.LossRate())
	}
	if src.Window() < 1 {
		t.Fatalf("window collapsed: %v", src.Window())
	}
}

// TestAIMDSharesWithVoice runs the greedy source against protected voice:
// the adaptive bulk fills leftover capacity while voice keeps its SLA.
func TestAIMDSharesWithVoice(t *testing.T) {
	b := buildSmall(Config{Seed: 91, Scheduler: SchedHybrid})
	twoSites(b)
	voice, _ := b.FlowBetween("voice", "hq", "branch", 5060)
	voice.DSCP = packet.DSCPEF
	trafgen.CBR(b.Net, voice, 160, 20*sim.Millisecond, 0, 5*sim.Second)

	bulk, _ := b.FlowBetween("bulk", "hq", "branch", 80)
	bulk.DSCP = packet.DSCPBestEffort
	src := b.AttachAIMD(bulk, 1400, 5*sim.Second)
	src.Start(0)
	b.Net.RunUntil(6 * sim.Second)

	if voice.Stats.LossRate() > 0.001 {
		t.Fatalf("voice loss with AIMD competitor = %v", voice.Stats.LossRate())
	}
	if voice.Stats.Latency.Percentile(99) > 15 {
		t.Fatalf("voice p99 = %v ms", voice.Stats.Latency.Percentile(99))
	}
	if bulk.Stats.ThroughputBps() < 1e6 {
		t.Fatalf("bulk starved: %.0f b/s", bulk.Stats.ThroughputBps())
	}
}

// TestAIMDSnapshotResume: a checkpoint taken mid-transfer must restore to
// a byte-identical continuation — the congestion state (cwnd, ssthresh,
// ack ledger) serializes and the pending RTO probe re-arms with its
// original event identity.
func TestAIMDSnapshotResume(t *testing.T) {
	build := func() (*Backbone, *trafgen.Flow, *trafgen.AIMD) {
		b := buildSmall(Config{Seed: 92, Scheduler: SchedHybrid})
		twoSites(b)
		f, _ := b.FlowBetween("bulk", "hq", "branch", 80)
		a := b.AttachAIMD(f, 1400, 2*sim.Second)
		a.Start(0)
		b.E.MarkSetup()
		return b, f, a
	}
	const fp = "aimd-resume"
	b1, f1, _ := build()
	b1.Net.RunUntil(700 * sim.Millisecond)
	data, err := b1.Snapshot(fp)
	if err != nil {
		t.Fatal(err)
	}
	b1.Net.RunUntil(2500 * sim.Millisecond)
	want := fingerprint(b1, []*trafgen.Flow{f1})

	b2, f2, a2 := build()
	if err := b2.Restore(data, fp); err != nil {
		t.Fatal(err)
	}
	b2.Net.RunUntil(2500 * sim.Millisecond)
	if got := fingerprint(b2, []*trafgen.Flow{f2}); got != want {
		t.Fatalf("AIMD resume diverged at %s", diffLine(want, got))
	}
	if a2.Window() < 1 || a2.Ssthresh() <= 0 {
		t.Fatalf("bad restored congestion state: cwnd=%v ssthresh=%v", a2.Window(), a2.Ssthresh())
	}
}

func TestRequestResponseRTT(t *testing.T) {
	b := buildSmall(Config{Seed: 95, Scheduler: SchedHybrid})
	twoSites(b)
	rr, err := b.RequestResponse("rpc", "hq", "branch", 9000, 400)
	if err != nil {
		t.Fatal(err)
	}
	rr.SendRequests(100, 20*sim.Millisecond, 0, sim.Second)
	b.Net.Run()

	if rr.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	if rr.Outstanding() != 0 {
		t.Fatalf("%d transactions never answered", rr.Outstanding())
	}
	// RTT = forward (~6ms) + reverse (~6ms) propagation plus serialization.
	if p50 := rr.RTT.Percentile(50); p50 < 10 || p50 > 20 {
		t.Fatalf("rpc p50 RTT = %v ms", p50)
	}
}

func TestRequestResponseUnderCongestion(t *testing.T) {
	// Transactions marked business-class keep bounded RTT while bulk
	// floods the path.
	b := buildSmall(Config{Seed: 96, Scheduler: SchedHybrid})
	twoSites(b)
	rr, _ := b.RequestResponse("rpc", "hq", "branch", 9000, 400)
	rr.Req.DSCP = packet.DSCPAF41
	rr.Resp.Flow.DSCP = packet.DSCPAF41
	rr.SendRequests(100, 20*sim.Millisecond, 0, 2*sim.Second)
	bulk, _ := b.FlowBetween("bulk", "hq", "branch", 80)
	trafgen.CBR(b.Net, bulk, 1400, 800*sim.Microsecond, 0, 2*sim.Second)
	b.Net.RunUntil(3 * sim.Second)

	if rr.Completed == 0 {
		t.Fatal("no transactions under congestion")
	}
	if p99 := rr.RTT.Percentile(99); p99 > 30 {
		t.Fatalf("business rpc p99 RTT = %v ms under congestion", p99)
	}
}

func TestTraceRoute(t *testing.T) {
	b := buildSmall(Config{Seed: 97})
	twoSites(b)
	tr := b.TraceRoute("hq", addr.MustParseIPv4("10.2.0.1"), packet.DSCPEF)
	if !tr.Delivered {
		t.Fatalf("trace failed: %s", tr.Reason)
	}
	// ce-hq, PE1, P1, P2, PE2, ce-branch = 6 hops.
	if len(tr.Hops) != 6 {
		t.Fatalf("hops = %d:\n%s", len(tr.Hops), tr.String())
	}
	out := tr.String()
	for _, want := range []string{"push 2 label(s)", "swap", "pop", "deliver", "PE1", "ce-branch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRouteUnreachable(t *testing.T) {
	b := buildSmall(Config{Seed: 98})
	twoSites(b)
	tr := b.TraceRoute("hq", addr.MustParseIPv4("99.0.0.1"), 0)
	if tr.Delivered {
		t.Fatal("unreachable destination delivered")
	}
	if !strings.Contains(tr.Reason, "no_route") {
		t.Fatalf("reason = %q", tr.Reason)
	}
	if tr2 := b.TraceRoute("ghost", addr.MustParseIPv4("10.2.0.1"), 0); tr2.Delivered {
		t.Fatal("unknown site traced")
	}
}

func TestTraceRouteShowsTEPath(t *testing.T) {
	// On the fish, a pinned TE LSP must appear in the trace.
	b := NewBackbone(Config{Seed: 99})
	b.AddPE("PE1")
	b.AddP("M")
	b.AddP("X")
	b.AddP("Y")
	b.AddPE("PE2")
	b.Link("PE1", "M", 10e6, sim.Millisecond, 1)
	b.Link("M", "PE2", 10e6, sim.Millisecond, 1)
	b.Link("PE1", "X", 10e6, sim.Millisecond, 2)
	b.Link("X", "Y", 10e6, sim.Millisecond, 2)
	b.Link("Y", "PE2", 10e6, sim.Millisecond, 2)
	b.BuildProvider()
	twoSites(b)
	long := b.G.KShortestPaths(b.mustNode("PE1"), b.mustNode("PE2"), 2, topo.Constraints{})[1]
	if _, err := b.SetupTELSP("pin", "PE1", "PE2", 1e6, -1, rsvp.SetupOptions{Explicit: &long}); err != nil {
		t.Fatal(err)
	}
	tr := b.TraceRoute("hq", addr.MustParseIPv4("10.2.0.1"), 0)
	if !tr.Delivered {
		t.Fatalf("TE trace failed: %s", tr.Reason)
	}
	if !strings.Contains(tr.String(), "X") || !strings.Contains(tr.String(), "Y") {
		t.Fatalf("trace did not follow TE path:\n%s", tr.String())
	}
}

func TestDOTExport(t *testing.T) {
	b := buildSmall(Config{Seed: 77})
	twoSites(b)
	f, _ := b.FlowBetween("f", "hq", "branch", 80)
	trafgen.CBR(b.Net, f, 1400, sim.Millisecond, 0, sim.Second)
	b.Net.Run()
	dot := b.DOT()
	for _, want := range []string{
		"digraph backbone", `"PE1" [shape=box`, `"P1" [shape=circle`,
		`"ce-hq" [shape=house`, "(acme)", "10M", "util",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Duplex links render once.
	if strings.Count(dot, `"PE1" -> "P1"`)+strings.Count(dot, `"P1" -> "PE1"`) != 1 {
		t.Fatalf("duplex link rendered twice:\n%s", dot)
	}
	// Failed links are dashed red.
	b.FailLink("P1", "P2", 0)
	if !strings.Contains(b.DOT(), "color=red") {
		t.Fatal("failed link not highlighted")
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	b := buildSmall(Config{Seed: 150})
	twoSites(b)
	ce, ok := b.Site("hq")
	if !ok || b.Net.Router(ce).Name != "ce-hq" {
		t.Fatalf("Site accessor: %v %v", ce, ok)
	}
	if _, ok := b.Site("ghost"); ok {
		t.Fatal("ghost site found")
	}
	names := b.SiteNames()
	if len(names) != 2 {
		t.Fatalf("SiteNames = %v", names)
	}
	for _, k := range []SchedulerKind{SchedFIFO, SchedPriority, SchedWFQ, SchedDRR, SchedHybrid} {
		if k.String() == "" {
			t.Fatal("empty scheduler name")
		}
	}
}

func TestIPSecPerClassMeshInCore(t *testing.T) {
	b := buildSmall(Config{Seed: 151, PlainIP: true, Scheduler: SchedHybrid})
	b.DefineVPN("acme")
	b.AddSite(SiteSpec{VPN: "acme", Name: "hq", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "acme", Name: "branch", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	if n := b.BuildIPSecMeshPerClass("acme", true); n != 1 {
		t.Fatalf("tunnels = %d", n)
	}
	voice, _ := b.FlowBetween("v", "hq", "branch", 5060)
	voice.DSCP = packet.DSCPEF
	bulk, _ := b.FlowBetween("bk", "hq", "branch", 80)
	trafgen.CBR(b.Net, voice, 160, 20*sim.Millisecond, 0, sim.Second)
	trafgen.CBR(b.Net, bulk, 1400, 2*sim.Millisecond, 0, sim.Second)
	b.Net.Run()
	if voice.Stats.Delivered != voice.Stats.Sent {
		t.Fatalf("voice: %d/%d", voice.Stats.Delivered, voice.Stats.Sent)
	}
	// Per-class SAs: even with reordering across classes, no replay drops.
	for _, site := range b.SiteNames() {
		ce, _ := b.Site(site)
		for _, sa := range b.Net.Router(ce).DecapSAs {
			if sa.ReplayDrops != 0 {
				t.Fatalf("replay drops with per-class SAs: %d", sa.ReplayDrops)
			}
		}
	}
}

func TestVPNSLATriggersClassTE(t *testing.T) {
	// A gold VPN re-marked to voice at the edge must ride the voice-class
	// TE LSP even though the customer sent best-effort packets.
	b := NewBackbone(Config{Seed: 161})
	b.AddPE("PE1")
	b.AddP("M")
	b.AddP("X")
	b.AddP("Y")
	b.AddPE("PE2")
	b.Link("PE1", "M", 10e6, sim.Millisecond, 1)
	b.Link("M", "PE2", 10e6, sim.Millisecond, 1)
	b.Link("PE1", "X", 10e6, sim.Millisecond, 2)
	b.Link("X", "Y", 10e6, sim.Millisecond, 2)
	b.Link("Y", "PE2", 10e6, sim.Millisecond, 2)
	b.BuildProvider()
	b.DefineVPN("gold")
	b.SetVPNSLA("gold", qosVoice)
	b.AddSite(SiteSpec{VPN: "gold", Name: "a", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(SiteSpec{VPN: "gold", Name: "z", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()
	long := b.G.KShortestPaths(b.mustNode("PE1"), b.mustNode("PE2"), 2, topo.Constraints{})[1]
	if _, err := b.SetupTELSP("voicete", "PE1", "PE2", 1e6, qosVoice, rsvp.SetupOptions{Explicit: &long}); err != nil {
		t.Fatal(err)
	}
	f, _ := b.FlowBetween("f", "a", "z", 80) // customer sends BE
	trafgen.CBR(b.Net, f, 200, 10*sim.Millisecond, 0, 300*sim.Millisecond)
	b.Net.Run()
	if f.Stats.Delivered != f.Stats.Sent {
		t.Fatalf("delivery %d/%d", f.Stats.Delivered, f.Stats.Sent)
	}
	if b.Router("X").LabelLookups == 0 {
		t.Fatal("gold traffic ignored the voice TE LSP")
	}
}

func TestPing(t *testing.T) {
	b := buildSmall(Config{Seed: 170})
	twoSites(b)
	rtt, ok := b.Ping("hq", addr.MustParseIPv4("10.2.0.1"), sim.Second)
	if !ok {
		t.Fatal("ping lost")
	}
	// 5 links ≈ 5ms propagation plus serialization.
	if rtt < 5*sim.Millisecond || rtt > 10*sim.Millisecond {
		t.Fatalf("ping latency = %v", rtt)
	}
	// Unreachable destination: times out.
	if _, ok := b.Ping("hq", addr.MustParseIPv4("99.0.0.1"), 100*sim.Millisecond); ok {
		t.Fatal("ping to nowhere delivered")
	}
	if _, ok := b.Ping("ghost", addr.MustParseIPv4("10.2.0.1"), sim.Second); ok {
		t.Fatal("ping from unknown site")
	}
}

func TestEFLimitProtectsLowerTiers(t *testing.T) {
	// An unpoliced customer floods EF at ~12 Mb/s into a 10 Mb/s core.
	run := func(capFrac float64) (businessLoss float64) {
		b := buildSmall(Config{Seed: 171, Scheduler: SchedHybrid, EFLimitFraction: capFrac})
		twoSites(b)
		flood, _ := b.FlowBetween("flood", "hq", "branch", 5060)
		flood.DSCP = packet.DSCPEF
		biz, _ := b.FlowBetween("biz", "hq", "branch", 443)
		biz.DSCP = packet.DSCPAF41
		trafgen.CBR(b.Net, flood, 1400, 900*sim.Microsecond, 0, 2*sim.Second)
		trafgen.CBR(b.Net, biz, 400, 4*sim.Millisecond, 0, 2*sim.Second)
		b.Net.RunUntil(3 * sim.Second)
		return biz.Stats.LossRate()
	}
	unprotected := run(0)
	protected := run(0.5) // EF capped at 50% of each link
	if unprotected < 0.10 {
		t.Fatalf("EF flood did not hurt business without a cap: %v", unprotected)
	}
	if protected > 0.001 {
		t.Fatalf("EF cap failed to protect business: %v", protected)
	}
}
