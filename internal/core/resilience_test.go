package core

import (
	"strings"
	"testing"

	"mplsvpn/internal/rsvp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/telemetry"
	"mplsvpn/internal/trafgen"
)

// resilientSmall is buildSmall plus sites, telemetry, and the resilience
// plane with fast timers so retry/degrade dynamics fit in a short run.
func resilientSmall(seed uint64, opts ResilienceOptions) (*Backbone, *telemetry.Telemetry) {
	b := buildSmall(Config{Seed: seed, Scheduler: SchedHybrid})
	twoSites(b)
	tel := b.EnableTelemetry(TelemetryOptions{Horizon: opts.Horizon, JournalCap: 4096})
	b.EnableResilience(opts)
	return b, tel
}

// A preempted TE intent must keep retrying with backoff and re-signal on
// its own once the preemptor releases the capacity — not wait for a
// reconvergence that may never come.
func TestTERetryResignalsWhenCapacityReturns(t *testing.T) {
	b, tel := resilientSmall(31, ResilienceOptions{
		RetryBase: 10 * sim.Millisecond, RetryMax: 80 * sim.Millisecond,
		Policy: DegradeNone, Horizon: 5 * sim.Second,
	})
	if _, err := b.SetupTELSPForVPN("victim", "PE1", "PE2", "acme", 8e6, -1,
		rsvp.SetupOptions{SetupPri: 6, HoldPri: 6}); err != nil {
		t.Fatal(err)
	}
	in, _ := b.G.NodeByName("PE1")
	eg, _ := b.G.NodeByName("PE2")
	var blocker *rsvp.LSP
	b.E.Schedule(100*sim.Millisecond, func() {
		l, err := b.RSVP.Setup("blocker", in, eg, 8e6, rsvp.SetupOptions{SetupPri: 2, HoldPri: 2})
		if err != nil {
			t.Errorf("blocker setup: %v", err)
			return
		}
		blocker = l
	})
	b.E.Schedule(sim.Second, func() { b.RSVP.Teardown(blocker.ID) })
	b.Net.RunUntil(2 * sim.Second)

	ints := b.TEIntents()
	if len(ints) != 1 {
		t.Fatalf("intents = %+v", ints)
	}
	if ints[0].State != "up" || ints[0].Bandwidth != 8e6 || ints[0].Path == "" {
		t.Fatalf("victim not re-signalled: %+v", ints[0])
	}
	j := tel.Journal.Render()
	if !strings.Contains(j, "te_retry") {
		t.Fatalf("journal missing te_retry:\n%s", j)
	}
}

// Persistent no-path shrinks the reservation step by step down to the
// floor (journaled), and a restore probe lifts it back to the full
// reservation once the capacity returns.
func TestTEDegradeShrinkThenRestore(t *testing.T) {
	b, tel := resilientSmall(32, ResilienceOptions{
		RetryBase: 10 * sim.Millisecond, RetryMax: 40 * sim.Millisecond,
		Policy: DegradeShrink, DegradeAfter: 2,
		RestoreProbe: 100 * sim.Millisecond, Horizon: 5 * sim.Second,
	})
	if _, err := b.SetupTELSPForVPN("victim", "PE1", "PE2", "acme", 8e6, -1,
		rsvp.SetupOptions{SetupPri: 6, HoldPri: 6}); err != nil {
		t.Fatal(err)
	}
	in, _ := b.G.NodeByName("PE1")
	eg, _ := b.G.NodeByName("PE2")
	var blocker *rsvp.LSP
	// 7 Mb/s preemptor: the victim's 8 Mb/s no longer fits (3 Mb/s free),
	// so it must shrink 8 -> 4 -> 2 (the 25% floor) to get back up.
	b.E.Schedule(100*sim.Millisecond, func() {
		l, err := b.RSVP.Setup("blocker", in, eg, 7e6, rsvp.SetupOptions{SetupPri: 2, HoldPri: 2})
		if err != nil {
			t.Errorf("blocker setup: %v", err)
			return
		}
		blocker = l
	})
	var midRun TEIntentStatus
	b.E.Schedule(1900*sim.Millisecond, func() { midRun = b.TEIntents()[0] })
	b.E.Schedule(2*sim.Second, func() { b.RSVP.Teardown(blocker.ID) })
	b.Net.RunUntil(3 * sim.Second)

	if midRun.State != "degraded" || midRun.Bandwidth != 2e6 {
		t.Fatalf("mid-run intent = %+v, want degraded at the 2 Mb/s floor", midRun)
	}
	got := b.TEIntents()[0]
	if got.State != "up" || got.Bandwidth != 8e6 {
		t.Fatalf("after capacity returned: %+v, want full 8 Mb/s up", got)
	}
	j := tel.Journal.Render()
	for _, want := range []string{"te_degraded", "te_restored"} {
		if !strings.Contains(j, want) {
			t.Fatalf("journal missing %q:\n%s", want, j)
		}
	}
}

// Fault-injection calls with broken preconditions return errors and leave
// an op_rejected journal trail instead of panicking.
func TestFaultInjectionRejections(t *testing.T) {
	b, tel := resilientSmall(33, ResilienceOptions{Horizon: sim.Second})

	if err := b.FailLink("PE1", "NOPE", 0); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := b.FailLink("PE1", "P2", 0); err == nil {
		t.Fatal("nonexistent link accepted")
	}
	if err := b.FailLink("PE1", "P1", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.FailLink("PE1", "P1", 0); err == nil {
		t.Fatal("double fail accepted")
	}
	if err := b.RestoreLink("P1", "P2", 0); err == nil {
		t.Fatal("restore of healthy link accepted")
	}
	if err := b.RestoreLink("PE1", "P1", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.CrashNode("hq", 0); err == nil {
		t.Fatal("crash of a CE accepted")
	}
	if err := b.CrashNode("NOPE", 0); err == nil {
		t.Fatal("crash of unknown node accepted")
	}
	if err := b.RestartNode("P1", 0); err == nil {
		t.Fatal("restart of a healthy node accepted")
	}
	if err := b.CrashNode("P1", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.CrashNode("P1", 0); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := b.RestartNode("P1", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.CutSiteAttachment("NOPE"); err == nil {
		t.Fatal("cut of unknown site accepted")
	}
	if err := b.CutSiteAttachment("hq"); err != nil {
		t.Fatal(err)
	}
	if err := b.CutSiteAttachment("hq"); err == nil {
		t.Fatal("double cut accepted")
	}
	if err := b.RestoreSiteAttachment("hq"); err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreSiteAttachment("hq"); err == nil {
		t.Fatal("double uncut accepted")
	}
	if !strings.Contains(tel.Journal.Render(), "op_rejected") {
		t.Fatal("rejections not journaled")
	}
}

// A crashed P router partitions the chain topology; a restart heals it.
// Both transitions reconverge and are visible from the forwarding tables.
func TestCrashRestartForwardingState(t *testing.T) {
	b, tel := resilientSmall(34, ResilienceOptions{Horizon: sim.Second})
	dst, ok := b.SiteAddr("branch")
	if !ok {
		t.Fatal("no branch site")
	}
	if tr := b.TraceRoute("hq", dst, 0); !tr.Delivered {
		t.Fatalf("baseline trace failed: %s", tr)
	}
	if err := b.CrashNode("P1", 0); err != nil {
		t.Fatal(err)
	}
	if tr := b.TraceRoute("hq", dst, 0); tr.Delivered {
		t.Fatalf("trace delivered across a crashed node:\n%s", tr)
	}
	if err := b.RestartNode("P1", 0); err != nil {
		t.Fatal(err)
	}
	if tr := b.TraceRoute("hq", dst, 0); !tr.Delivered {
		t.Fatalf("trace still broken after restart:\n%s", tr)
	}
	j := tel.Journal.Render()
	for _, want := range []string{"node_down", "node_up"} {
		if !strings.Contains(j, want) {
			t.Fatalf("journal missing %q:\n%s", want, j)
		}
	}
}

// FRR local repair must activate at min(detect, LocalRepairDelay): with a
// sub-millisecond detection but a control plane stalled by message loss,
// the bypass is in place well before reconvergence would be.
func TestFRRFloorBeatsStalledReconvergence(t *testing.T) {
	b := NewBackbone(Config{Seed: 35, Scheduler: SchedHybrid, FRR: true})
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddP("P2")
	b.AddPE("PE2")
	b.Link("PE1", "P1", 10e6, sim.Millisecond, 1)
	b.Link("P1", "PE2", 10e6, sim.Millisecond, 1)
	b.Link("PE1", "P2", 10e6, sim.Millisecond, 2)
	b.Link("P2", "PE2", 10e6, sim.Millisecond, 2)
	b.BuildProvider()
	twoSites(b)
	dst, _ := b.SiteAddr("branch")
	// Every reconvergence trigger is lost and retransmitted 300 ms later.
	b.SetControlPlaneLoss(1.0, 300*sim.Millisecond)

	const detect = 200 * sim.Microsecond
	b.E.Schedule(sim.Second, func() { b.FailLink("P1", "PE2", detect) })
	var repaired, reconverged *Trace
	// 500 us after the failure: past min(detect, LocalRepairDelay) = 200 us
	// but long before the stalled reconvergence at ~300 ms.
	b.E.Schedule(sim.Second+500*sim.Microsecond, func() { repaired = b.TraceRoute("hq", dst, 0) })
	b.E.Schedule(2*sim.Second, func() { reconverged = b.TraceRoute("hq", dst, 0) })
	b.Net.RunUntil(3 * sim.Second)

	if repaired == nil || !repaired.Delivered {
		t.Fatalf("bypass not active 500us after failure (repair slower than min(detect, LocalRepairDelay)):\n%s", repaired)
	}
	if reconverged == nil || !reconverged.Delivered {
		t.Fatalf("reconvergence broken:\n%s", reconverged)
	}
}

// runCoreChaosScenario drives a fault script — flap train, node
// crash/restart, attachment cut, lossy control plane — with the full
// telemetry + resilience planes on, using the core primitives directly.
func runCoreChaosScenario(seed uint64) (*Backbone, *telemetry.Telemetry) {
	b, voice, bulk := breachBackbone(seed)
	tel := b.EnableTelemetry(TelemetryOptions{Horizon: 6 * sim.Second, JournalCap: 4096})
	b.EnableResilience(ResilienceOptions{Horizon: 6 * sim.Second})
	b.SetControlPlaneLoss(0.3, 200*sim.Millisecond)
	trafgen.CBR(b.Net, voice, 160, 20*sim.Millisecond, 0, 6*sim.Second)
	trafgen.CBR(b.Net, bulk, 1400, 2*sim.Millisecond, 0, 6*sim.Second)
	for i := 0; i < 4; i++ {
		at := sim.Second + sim.Time(i)*400*sim.Millisecond
		b.E.Schedule(at, func() { b.FailLink("PEb", "P2", 10*sim.Millisecond) })
		b.E.Schedule(at+200*sim.Millisecond, func() { b.RestoreLink("PEb", "P2", 10*sim.Millisecond) })
	}
	b.E.Schedule(3*sim.Second, func() { b.CrashNode("P2", 50*sim.Millisecond) })
	b.E.Schedule(4*sim.Second, func() { b.RestartNode("P2", 50*sim.Millisecond) })
	b.E.Schedule(4500*sim.Millisecond, func() { b.CutSiteAttachment("b-src") })
	b.E.Schedule(5*sim.Second, func() { b.RestoreSiteAttachment("b-src") })
	b.Net.RunUntil(7 * sim.Second)
	return b, tel
}

// Chaos-flavored determinism: the fault script above, run twice with the
// same seed, must produce byte-identical journals and final control-plane
// state even with jittered retries and probabilistic control-plane loss.
func TestChaosScenarioDeterminism(t *testing.T) {
	b1, tel1 := runCoreChaosScenario(21)
	b2, tel2 := runCoreChaosScenario(21)

	j1, j2 := tel1.Journal.Render(), tel2.Journal.Render()
	if j1 != j2 {
		t.Fatalf("journals differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}
	d1, d2 := b1.StateDigest(), b2.StateDigest()
	if d1 != d2 {
		t.Fatalf("state digests differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", d1, d2)
	}
	for _, want := range []string{"link_down", "link_up", "node_down", "node_up"} {
		if !strings.Contains(j1, want) {
			t.Fatalf("journal missing %q:\n%s", want, j1)
		}
	}
	for _, st := range b1.TEIntents() {
		if st.State == "down" {
			t.Fatalf("intent %s stuck down after scenario:\n%s", st.Name, j1)
		}
	}
	if b1.IsolationViolations != 0 {
		t.Fatalf("isolation violations = %d", b1.IsolationViolations)
	}
	if err := b1.Net.CheckConservation(); err != nil {
		t.Fatalf("byte conservation: %v", err)
	}
}
