package core

import (
	"fmt"
	"testing"

	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
	"mplsvpn/internal/trafgen"
)

// diamond builds PE1 -> {P-up, P-down} -> PE2 with equal metrics: a
// two-way ECMP core.
func diamond(cfg Config) *Backbone {
	b := NewBackbone(cfg)
	b.AddPE("PE1")
	b.AddP("P-up")
	b.AddP("P-down")
	b.AddPE("PE2")
	b.Link("PE1", "P-up", 100e6, sim.Millisecond, 1)
	b.Link("P-up", "PE2", 100e6, sim.Millisecond, 1)
	b.Link("PE1", "P-down", 100e6, sim.Millisecond, 1)
	b.Link("P-down", "PE2", 100e6, sim.Millisecond, 1)
	b.BuildProvider()
	return b
}

func TestECMPSplitsFlows(t *testing.T) {
	b := diamond(Config{Seed: 70})
	twoSites(b)
	// 32 distinct flows (different ports) hash across both paths.
	for i := 0; i < 32; i++ {
		f, err := b.FlowBetween(fmt.Sprintf("f%d", i), "hq", "branch", uint16(10000+i*7))
		if err != nil {
			t.Fatal(err)
		}
		trafgen.CBR(b.Net, f, 200, 50*sim.Millisecond, 0, 500*sim.Millisecond)
	}
	b.Net.Run()
	up := b.Router("P-up").LabelLookups
	down := b.Router("P-down").LabelLookups
	if up == 0 || down == 0 {
		t.Fatalf("ECMP did not split: up=%d down=%d", up, down)
	}
	total := up + down
	// Rough balance: neither path below 20% of traffic.
	if up*5 < total || down*5 < total {
		t.Fatalf("ECMP badly unbalanced: up=%d down=%d", up, down)
	}
	if b.Net.Dropped != 0 {
		t.Fatalf("drops during ECMP: %d", b.Net.Dropped)
	}
}

func TestECMPFlowAffinity(t *testing.T) {
	// A single flow must stick to one path: no packet reordering.
	b := diamond(Config{Seed: 71})
	twoSites(b)
	f, _ := b.FlowBetween("f", "hq", "branch", 5000)
	var seqs []uint64
	b.OnDeliver(func(_ topo.NodeID, p *packet.Packet) { seqs = append(seqs, p.Seq) })
	trafgen.CBR(b.Net, f, 1000, sim.Millisecond, 0, 500*sim.Millisecond)
	b.Net.Run()

	up := b.Router("P-up").LabelLookups
	down := b.Router("P-down").LabelLookups
	if up != 0 && down != 0 {
		t.Fatalf("single flow split across paths: up=%d down=%d", up, down)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("reordering at %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}

func TestECMPSurvivesMemberFailure(t *testing.T) {
	b := diamond(Config{Seed: 72})
	twoSites(b)
	b.FailLink("PE1", "P-up", 0)
	// All flows now take the surviving path, losslessly (post-reconverge).
	for i := 0; i < 8; i++ {
		f, _ := b.FlowBetween(fmt.Sprintf("f%d", i), "hq", "branch", uint16(11000+i))
		trafgen.CBR(b.Net, f, 200, 20*sim.Millisecond, 0, 300*sim.Millisecond)
	}
	b.Net.Run()
	if b.Net.Dropped != 0 {
		t.Fatalf("drops after ECMP member failure: %d", b.Net.Dropped)
	}
	if b.Router("P-up").LabelLookups != 0 {
		t.Fatal("traffic used the failed path")
	}
	if b.Router("P-down").LabelLookups == 0 {
		t.Fatal("surviving path unused")
	}
}

func TestECMPIGPRouteHasBothNextHops(t *testing.T) {
	b := diamond(Config{Seed: 73})
	pe1 := b.mustNode("PE1")
	pe2 := b.mustNode("PE2")
	r, ok := b.IGP.Instances[pe1].RouteTo(pe2)
	if !ok {
		t.Fatal("no route PE1->PE2")
	}
	if len(r.NextHops) != 2 {
		t.Fatalf("ECMP next hops = %d, want 2", len(r.NextHops))
	}
	seen := map[topo.NodeID]bool{}
	for _, lid := range r.NextHops {
		seen[b.G.Link(lid).To] = true
	}
	if !seen[b.mustNode("P-up")] || !seen[b.mustNode("P-down")] {
		t.Fatalf("next hops wrong: %v", r.NextHops)
	}
}
