// Checkpoint/restore for multi-provider simulations: one container holding
// the shared engine/topology/network sections once, every member AS's
// control and traffic sections under a "<as>/" prefix, and the inter-AS
// peering plane (session state machines, selected trees, boundary label
// records, stitch cache) as its own section.
//
// The protocol mirrors Backbone.Snapshot: the restore path re-runs the
// original multi-AS scenario builder (including AddPeering and the initial
// ReconcilePeerings), then overlays the serialized dynamic state — the
// rebuild's boundary installations are discarded wholesale in favour of the
// checkpoint's records, exactly as router forwarding state is. Pending
// tagged events carry their backbone's tag domain in the high bits of
// Tag.Kind, which is what routes each re-arm to the right AS here.
package core

import (
	"fmt"
	"sort"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/snapshot"
	"mplsvpn/internal/topo"
)

const secInterAS = "interas"

// Snapshot serializes the whole multi-provider simulation at the current
// virtual time. Every member backbone must be built.
func (x *InterAS) Snapshot(scenario string) ([]byte, error) {
	for _, name := range x.order {
		if !x.ASes[name].built {
			return nil, fmt.Errorf("core: snapshot before BuildProvider of AS %q", name)
		}
	}

	f := snapshot.NewFile()
	scheds := x.E.Schedulers()

	var w snapshot.Writer
	w.Str(scenario)
	w.I64(int64(x.E.Now()))
	w.U64(uint64(len(scheds)))
	w.U64(uint64(len(x.order)))
	for _, name := range x.order {
		b := x.ASes[name]
		w.Str(name)
		w.U64(b.Cfg.Seed)
		w.Bool(b.Cfg.PlainIP)
	}
	f.Add(secManifest, w.Data())

	w = snapshot.Writer{}
	saveSchedState(&w, x.E)
	for _, name := range x.order {
		x.ASes[name].saveAuxRngs(&w)
	}
	f.Add(secEngine, w.Data())

	pending, err := classifyPendingOn(x.E, x.Net.OwnsAction, x.sourceResolver())
	if err != nil {
		return nil, err
	}
	f.Add(secPending, pending)

	f.Add(secTopo, saveTopoState(x.G))

	for _, name := range x.order {
		x.ASes[name].addControlSections(f, name+"/")
	}

	w = snapshot.Writer{}
	x.Net.SaveState(&w)
	f.Add(secNet, w.Data())

	for _, name := range x.order {
		x.ASes[name].addTrafficSections(f, name+"/")
	}

	w = snapshot.Writer{}
	x.savePlane(&w)
	f.Add(secInterAS, w.Data())

	return f.Encode(), nil
}

// sourceResolver maps a pending source action to a global index over the
// concatenation of every AS's registered sources, in AS order.
func (x *InterAS) sourceResolver() func(sim.Action) (int, bool) {
	return func(a sim.Action) (int, bool) {
		offset := 0
		for _, name := range x.order {
			b := x.ASes[name]
			if idx, ok := b.srcIndex[a]; ok {
				return offset + idx, true
			}
			offset += len(b.sources)
		}
		return 0, false
	}
}

// Restore overlays a multi-provider checkpoint onto a freshly rebuilt
// scenario: same builder (including peerings and the initial reconcile),
// same seed, same sharding, nothing run yet.
func (x *InterAS) Restore(data []byte, scenario string) error {
	f, err := snapshot.Decode(data)
	if err != nil {
		return err
	}
	sec := func(name string) (*snapshot.Reader, error) {
		p, ok := f.Section(name)
		if !ok {
			return nil, fmt.Errorf("%w: missing section %q", snapshot.ErrCorrupt, name)
		}
		return snapshot.NewReader(p), nil
	}

	r, err := sec(secManifest)
	if err != nil {
		return err
	}
	wantScenario := r.Str()
	snapT := sim.Time(r.I64())
	wantScheds := r.U64()
	nas := r.Count(3)
	if r.Err() != nil {
		return r.Err()
	}
	if wantScenario != scenario {
		return fmt.Errorf("%w: scenario %q, checkpoint %q", snapshot.ErrMismatch, scenario, wantScenario)
	}
	if wantScheds != uint64(len(x.E.Schedulers())) {
		return fmt.Errorf("%w: %d schedulers, checkpoint %d", snapshot.ErrMismatch, len(x.E.Schedulers()), wantScheds)
	}
	if nas != len(x.order) {
		return fmt.Errorf("%w: %d ASes, checkpoint %d", snapshot.ErrMismatch, len(x.order), nas)
	}
	for _, name := range x.order {
		wantName := r.Str()
		wantSeed := r.U64()
		wantPlain := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		b := x.ASes[name]
		switch {
		case wantName != name:
			return fmt.Errorf("%w: AS %q, checkpoint %q", snapshot.ErrMismatch, name, wantName)
		case wantSeed != b.Cfg.Seed:
			return fmt.Errorf("%w: AS %q seed %d, checkpoint %d", snapshot.ErrMismatch, name, b.Cfg.Seed, wantSeed)
		case wantPlain != b.Cfg.PlainIP:
			return fmt.Errorf("%w: AS %q PlainIP=%v, checkpoint %v", snapshot.ErrMismatch, name, b.Cfg.PlainIP, wantPlain)
		case !b.built:
			return fmt.Errorf("%w: restore before BuildProvider of AS %q", snapshot.ErrMismatch, name)
		}
	}
	_ = snapT

	x.E.MarkSetup()
	pr, err := sec(secPending)
	if err != nil {
		return err
	}
	keep, tagged, srcEvents, err := loadPending(pr)
	if err != nil {
		return err
	}
	x.E.FilterPending(func(shard int, seq uint64) bool {
		return keep[[2]uint64{uint64(shard + 1), seq}]
	})

	if r, err = sec(secTopo); err != nil {
		return err
	}
	if err := loadTopoState(r, x.G); err != nil {
		return err
	}

	for _, name := range x.order {
		if err := x.ASes[name].restoreControlSections(sec, name+"/"); err != nil {
			return fmt.Errorf("AS %s: %w", name, err)
		}
	}

	if r, err = sec(secNet); err != nil {
		return err
	}
	if err := x.Net.LoadState(r); err != nil {
		return err
	}

	for _, name := range x.order {
		if err := x.ASes[name].restoreTrafficSections(sec, name+"/"); err != nil {
			return fmt.Errorf("AS %s: %w", name, err)
		}
	}

	if r, err = sec(secInterAS); err != nil {
		return err
	}
	if err := x.loadPlane(r); err != nil {
		return err
	}

	// Re-arm tagged control-plane timers, routed by tag domain.
	for _, t := range tagged {
		domain := int(t.tag.Kind >> 4)
		if domain < 1 || domain > len(x.order) {
			return fmt.Errorf("%w: pending event with tag domain %d, %d ASes", snapshot.ErrCorrupt, domain, len(x.order))
		}
		fn, err := x.ASes[x.order[domain-1]].rearmOwnTagged(t.tag)
		if err != nil {
			return err
		}
		x.E.RestoreEvent(t.shard, t.at, t.seq, t.tag, fn)
	}
	if err := x.rearmSharedSources(srcEvents); err != nil {
		return err
	}

	if r, err = sec(secEngine); err != nil {
		return err
	}
	if err := loadSchedState(r, x.E); err != nil {
		return err
	}
	for _, name := range x.order {
		if err := x.ASes[name].loadAuxRngs(r); err != nil {
			return fmt.Errorf("AS %s: %w", name, err)
		}
	}
	return r.Err()
}

// rearmSharedSources resolves global source indexes back to (AS, local
// source) and re-arms the repost events.
func (x *InterAS) rearmSharedSources(srcEvents []pendingSource) error {
	total := 0
	for _, name := range x.order {
		total += len(x.ASes[name].sources)
	}
	for _, s := range srcEvents {
		if s.idx < 0 || s.idx >= total {
			return fmt.Errorf("%w: pending event for source %d, only %d registered", snapshot.ErrMismatch, s.idx, total)
		}
		idx := s.idx
		for _, name := range x.order {
			b := x.ASes[name]
			if idx < len(b.sources) {
				x.E.RestoreAction(s.shard, s.at, s.seq, b.sources[idx])
				break
			}
			idx -= len(b.sources)
		}
	}
	return nil
}

// savePlane serializes the peering plane: failure set, counters, session
// state machines, installed (VPN, origin) trees with their teardown
// records, and the refcounted stitch cache.
func (x *InterAS) savePlane(w *snapshot.Writer) {
	pl := x.plane()

	saveASSet(w, pl.failed)
	saveASSet(w, pl.restoring)

	w.I64(int64(pl.stats.PeeringFlaps))
	w.I64(int64(pl.stats.PeeringRestores))
	w.I64(int64(pl.stats.Failovers))
	w.I64(int64(pl.stats.Reinstalls))
	w.I64(int64(pl.stats.Partitioned))

	w.Bool(pl.surv != nil)

	w.U64(uint64(len(pl.peerings)))
	for _, p := range pl.peerings {
		w.I64(int64(p.state))
		w.I64(int64(p.misses))
		w.I64(int64(p.grDeadline))
		w.Bool(p.down)
		w.Bool(p.cut)
	}

	keys := sortedOriginKeys(pl.installs)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		inst := pl.installs[k]
		w.Str(k.vpn)
		w.Str(k.origin)
		w.U64(uint64(len(inst.hops)))
		for _, h := range inst.hops {
			w.I64(int64(h.peering))
			w.Str(h.from)
			w.Str(h.to)
		}
		saveILMRefs(w, inst.ilms)
		saveFTNRefs(w, inst.ftns)
		w.U64(uint64(len(inst.exts)))
		for _, e := range inst.exts {
			w.Str(e.as)
			w.I64(int64(e.node))
			addr.SavePrefix(w, e.prefix)
			w.Str(e.site)
		}
		w.U64(uint64(len(inst.routes)))
		for _, rt := range inst.routes {
			w.Str(rt.as)
			w.I64(int64(rt.node))
			addr.SaveVPNPrefix(w, rt.prefix)
		}
		w.U64(uint64(len(inst.access)))
		for _, a := range inst.access {
			w.Str(a.as)
			w.I64(int64(a.node))
			w.I64(int64(a.link))
		}
		w.U64(uint64(len(inst.stitchK)))
		for _, sk := range inst.stitchK {
			saveStitchKey(w, sk)
		}
	}

	sks := make([]stitchKey, 0, len(pl.stitches))
	for sk := range pl.stitches {
		sks = append(sks, sk)
	}
	sort.Slice(sks, func(i, j int) bool {
		if sks[i].peering != sks[j].peering {
			return sks[i].peering < sks[j].peering
		}
		if sks[i].from != sks[j].from {
			return sks[i].from < sks[j].from
		}
		return sks[i].target < sks[j].target
	})
	w.U64(uint64(len(sks)))
	for _, sk := range sks {
		rec := pl.stitches[sk]
		saveStitchKey(w, sk)
		w.I64(int64(rec.count))
		w.U64(uint64(rec.tn))
		saveILMRefs(w, rec.ilms)
		saveFTNRefs(w, rec.ftns)
	}
}

// loadPlane is the decode side of savePlane. The rebuild's own plane state
// (from the builder's ReconcilePeerings) is discarded and replaced.
func (x *InterAS) loadPlane(r *snapshot.Reader) error {
	pl := x.plane()

	var err error
	if pl.failed, err = x.loadASSet(r); err != nil {
		return err
	}
	if pl.restoring, err = x.loadASSet(r); err != nil {
		return err
	}

	pl.stats.PeeringFlaps = int(r.I64())
	pl.stats.PeeringRestores = int(r.I64())
	pl.stats.Failovers = int(r.I64())
	pl.stats.Reinstalls = int(r.I64())
	pl.stats.Partitioned = int(r.I64())

	hasSurv := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasSurv != (pl.surv != nil) {
		return fmt.Errorf("%w: inter-AS survivability in checkpoint=%v, scenario=%v", snapshot.ErrMismatch, hasSurv, pl.surv != nil)
	}

	np := r.Count(5)
	if np != len(pl.peerings) {
		return fmt.Errorf("%w: %d peerings in checkpoint, %d in scenario", snapshot.ErrMismatch, np, len(pl.peerings))
	}
	for _, p := range pl.peerings {
		p.state = survState(r.I64())
		p.misses = int(r.I64())
		p.grDeadline = sim.Time(r.I64())
		p.down = r.Bool()
		p.cut = r.Bool()
	}

	ni := r.Count(2)
	pl.installs = make(map[originKey]*originInstall, ni)
	for i := 0; i < ni; i++ {
		k := originKey{vpn: r.Str(), origin: r.Str()}
		inst := &originInstall{}
		nh := r.Count(3)
		for j := 0; j < nh; j++ {
			inst.hops = append(inst.hops, hopRef{
				peering: int(r.I64()), from: r.Str(), to: r.Str()})
		}
		inst.ilms = loadILMRefs(r)
		inst.ftns = loadFTNRefs(r)
		ne := r.Count(4)
		for j := 0; j < ne; j++ {
			inst.exts = append(inst.exts, extRef{
				as: r.Str(), node: topo.NodeID(r.I64()),
				prefix: addr.LoadPrefix(r), site: r.Str()})
		}
		nr := r.Count(3)
		for j := 0; j < nr; j++ {
			inst.routes = append(inst.routes, routeRef{
				as: r.Str(), node: topo.NodeID(r.I64()),
				prefix: addr.LoadVPNPrefix(r)})
		}
		na := r.Count(3)
		for j := 0; j < na; j++ {
			inst.access = append(inst.access, accessRef{
				as: r.Str(), node: topo.NodeID(r.I64()),
				link: topo.LinkID(r.I64())})
		}
		nsk := r.Count(3)
		for j := 0; j < nsk; j++ {
			inst.stitchK = append(inst.stitchK, loadStitchKey(r))
		}
		if r.Err() != nil {
			return r.Err()
		}
		pl.installs[k] = inst
	}

	ns := r.Count(4)
	pl.stitches = make(map[stitchKey]*stitchRec, ns)
	for i := 0; i < ns; i++ {
		sk := loadStitchKey(r)
		rec := &stitchRec{count: int(r.I64()), tn: packet.Label(r.U64())}
		rec.ilms = loadILMRefs(r)
		rec.ftns = loadFTNRefs(r)
		if r.Err() != nil {
			return r.Err()
		}
		pl.stitches[sk] = rec
	}
	return r.Err()
}

// saveASSet writes a set of member-AS names in sorted order.
func saveASSet(w *snapshot.Writer, set map[string]bool) {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	w.U64(uint64(len(names)))
	for _, n := range names {
		w.Str(n)
	}
}

// loadASSet is the decode side of saveASSet, validating membership.
func (x *InterAS) loadASSet(r *snapshot.Reader) (map[string]bool, error) {
	n := r.Count(1)
	set := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		name := r.Str()
		if _, ok := x.ASes[name]; !ok {
			return nil, fmt.Errorf("%w: AS %q not in scenario", snapshot.ErrMismatch, name)
		}
		set[name] = true
	}
	return set, r.Err()
}

func saveILMRefs(w *snapshot.Writer, refs []ilmRef) {
	w.U64(uint64(len(refs)))
	for _, i := range refs {
		w.Str(i.as)
		w.I64(int64(i.node))
		w.U64(uint64(i.label))
	}
}

func loadILMRefs(r *snapshot.Reader) []ilmRef {
	n := r.Count(3)
	out := make([]ilmRef, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ilmRef{
			as: r.Str(), node: topo.NodeID(r.I64()), label: packet.Label(r.U64())})
	}
	return out
}

func saveFTNRefs(w *snapshot.Writer, refs []ftnRef) {
	w.U64(uint64(len(refs)))
	for _, f := range refs {
		w.Str(f.as)
		w.I64(int64(f.node))
		addr.SavePrefix(w, f.fec)
	}
}

func loadFTNRefs(r *snapshot.Reader) []ftnRef {
	n := r.Count(3)
	out := make([]ftnRef, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ftnRef{
			as: r.Str(), node: topo.NodeID(r.I64()), fec: addr.LoadPrefix(r)})
	}
	return out
}

func saveStitchKey(w *snapshot.Writer, sk stitchKey) {
	w.I64(int64(sk.peering))
	w.Str(sk.from)
	w.I64(int64(sk.target))
}

func loadStitchKey(r *snapshot.Reader) stitchKey {
	return stitchKey{peering: int(r.I64()), from: r.Str(), target: topo.NodeID(r.I64())}
}
