package core

import (
	"sort"

	"mplsvpn/internal/packet"
	"mplsvpn/internal/qos"
	"mplsvpn/internal/rsvp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/telemetry"
	"mplsvpn/internal/topo"
)

// DefaultHotLinkThreshold is the per-interval utilization above which a
// link counts as congested when the SLA watcher computes its avoid set.
const DefaultHotLinkThreshold = 0.9

// TelemetryOptions configures the streaming telemetry plane.
type TelemetryOptions struct {
	// Interval is the flow-export / SLA-evaluation period
	// (0 = telemetry.DefaultExportInterval).
	Interval sim.Time
	// JournalCap bounds the event journal (0 = telemetry.DefaultJournalCap).
	JournalCap int
	// Horizon, when positive, pre-schedules export ticks at every interval
	// boundary up to this virtual time, so intervals roll even while no
	// traffic is flowing. Without it the exporter rolls lazily on traffic
	// and the engine can still quiesce.
	Horizon sim.Time
	// SLAs, when non-empty, enables the online SLA watcher.
	SLAs []telemetry.SLATarget
	// HotLinkThreshold tunes congestion detection for the breach action
	// (0 = DefaultHotLinkThreshold).
	HotLinkThreshold float64
	// OnBreach overrides the default breach action (congestion-aware
	// ReoptimizeAvoiding of the VPN's TE LSPs). The default still runs; the
	// override runs after it. Set SLAs for this to matter.
	OnBreach func(vpn, reason string)
}

// vpnTel caches one VPN's pre-resolved delivery instruments so the per-packet
// path does a single map lookup, not three registry lookups.
type vpnTel struct {
	delivered *telemetry.Counter // bytes
	dropped   *telemetry.Counter // packets
	latency   *telemetry.Histogram
}

// EnableTelemetry switches the observability plane on: registry counters
// through netsim/qos/device, RSVP events into the journal, flow export and
// SLA watching on the export interval. Works before or after BuildProvider.
// Returns the telemetry bundle for snapshots.
func (b *Backbone) EnableTelemetry(opts TelemetryOptions) *telemetry.Telemetry {
	if b.tel != nil {
		return b.tel
	}
	if opts.HotLinkThreshold <= 0 {
		opts.HotLinkThreshold = DefaultHotLinkThreshold
	}
	b.tel = telemetry.New(opts.Interval, opts.JournalCap)
	b.telHotThreshold = opts.HotLinkThreshold
	b.vpnTel = make(map[string]*vpnTel)
	// Telemetry observes every delivery in global time order; deliveries
	// must come back through the barrier stream.
	b.disableLocalDeliver()

	b.Net.EnableTelemetry(b.tel.Reg)
	b.tel.OnSample = b.Net.SampleTelemetry
	b.tel.Flows.OnRoll = b.telRoll

	// Classifiers of already-provisioned sites; later sites bind in AddSite.
	names := b.SiteNames()
	sort.Strings(names)
	for _, n := range names {
		rec := b.sites[n]
		if rec.Spec.Classifier != nil {
			rec.Spec.Classifier.BindTelemetry(b.tel.Reg, "ce-"+n)
		}
	}

	if len(opts.SLAs) > 0 {
		w := telemetry.NewWatcher(opts.SLAs, b.tel.Journal)
		w.OnBreach = func(vpn, reason string) {
			b.breachReoptimize(vpn)
			if opts.OnBreach != nil {
				opts.OnBreach(vpn, reason)
			}
		}
		b.tel.Watcher = w
	}

	b.wireRSVPHooks()

	// Per-cause drop counters, pre-resolved so the hook does one array
	// index per drop. The label is the DropReason's stable snake_case name.
	for r := 0; r < packet.NumDropReasons; r++ {
		b.telDropReason[r] = b.tel.Reg.Counter("net_dropped_packets",
			telemetry.Labels{Reason: packet.DropReason(r).String()})
	}

	prevDrop := b.Net.OnDrop
	b.Net.OnDrop = func(at topo.NodeID, p *packet.Packet, reason packet.DropReason) {
		b.telDrop(p)
		if int(reason) < len(b.telDropReason) {
			b.telDropReason[reason].Inc()
		}
		if prevDrop != nil {
			prevDrop(at, p, reason)
		}
	}

	if opts.Horizon > 0 {
		interval := b.tel.Flows.Interval
		for t := interval; t <= opts.Horizon; t += interval {
			b.E.After(t, func() { b.tel.Flows.RollTo(b.E.Now()) })
		}
	}
	return b.tel
}

// Telemetry returns the telemetry plane, or nil when not enabled.
func (b *Backbone) Telemetry() *telemetry.Telemetry { return b.tel }

// TelemetrySnapshot freezes the full observability state at the current
// virtual time.
func (b *Backbone) TelemetrySnapshot() *telemetry.Snapshot {
	if b.tel == nil {
		return nil
	}
	return b.tel.Snapshot(b.E.Now())
}

// LSPDrainDelay is how long a make-before-break switchover keeps the old
// path's interior labels installed after the ingress repoints: in-flight
// packets already committed to the old LSP drain through it instead of
// black-holing at the first unbound hop.
const LSPDrainDelay = 50 * sim.Millisecond

// wireRSVPHooks routes RSVP signalling events into the telemetry journal
// and, when resilience is on, into the TE retry queue. Must be re-applied
// whenever b.RSVP is recreated (reconvergeProvider).
func (b *Backbone) wireRSVPHooks() {
	if b.RSVP == nil {
		return
	}
	b.RSVP.PlainSPF = b.plainSPF
	b.RSVP.Defer = func(id int) {
		// Tagged so a checkpoint can serialize the pending drain and a
		// restore can re-arm it. RunDrain on an id from a pre-reconverge
		// protocol generation is a safe no-op.
		b.E.AfterTagged(LSPDrainDelay, b.tag(tagDrain, uint64(id), 0),
			func() { b.RSVP.RunDrain(id) })
	}
	if b.tel == nil && b.res == nil {
		return
	}
	b.RSVP.OnEvent = func(e rsvp.Event) {
		if b.tel != nil {
			var kind telemetry.EventKind
			known := true
			switch e.Kind {
			case rsvp.EventSetup:
				kind = telemetry.EventLSPUp
			case rsvp.EventSetupFailed:
				kind = telemetry.EventLSPSetupFailed
			case rsvp.EventTeardown, rsvp.EventRefreshTimeout:
				kind = telemetry.EventLSPDown
			case rsvp.EventPreempted:
				kind = telemetry.EventLSPPreempted
			case rsvp.EventReoptimized:
				kind = telemetry.EventLSPReoptimized
			default:
				known = false
			}
			if known {
				b.tel.Journal.Record(b.E.Now(), kind, "lsp:"+e.Name, e.Detail)
			}
		}
		// An involuntary loss (preemption or soft-state expiry) re-enters the
		// retry queue; deliberate teardowns must not, or every reconvergence
		// would fight itself.
		if b.res != nil && (e.Kind == rsvp.EventPreempted || e.Kind == rsvp.EventRefreshTimeout) {
			b.teLost(e.LSPID)
		}
	}
}

// vpnTelFor resolves (once per VPN) the delivery instruments.
func (b *Backbone) vpnTelFor(vpn string) *vpnTel {
	vt, ok := b.vpnTel[vpn]
	if !ok {
		l := telemetry.Labels{VPN: vpn}
		vt = &vpnTel{
			delivered: b.tel.Reg.Counter("vpn_delivered_bytes", l),
			dropped:   b.tel.Reg.Counter("vpn_dropped_pkts", l),
			latency:   b.tel.Reg.Histogram("vpn_latency_ms", l, nil),
		}
		b.vpnTel[vpn] = vt
	}
	return vt
}

// telDeliver accounts one delivered packet: per-VPN counters, the latency
// histogram, the flow exporter, and the SLA watcher's interval window.
func (b *Backbone) telDeliver(at topo.NodeID, p *packet.Packet) {
	now := b.E.Now()
	rec, ok := b.siteByCE[at]
	if !ok {
		return
	}
	vpn := rec.Spec.VPN
	latMs := float64(now-p.SentAt) / float64(sim.Millisecond)
	size := p.SerializedLen()

	vt := b.vpnTelFor(vpn)
	vt.delivered.Add(int64(size))
	vt.latency.Observe(latMs)
	b.tel.Watcher.ObserveDelivery(vpn, latMs)

	srcSite := ""
	if src, ok := b.siteByPrefix.Lookup(p.IP.Src); ok {
		srcSite = src.Spec.Name
	}
	b.tel.Flows.Record(now, telemetry.FlowKey{
		VPN: vpn, SrcSite: srcSite, DstSite: rec.Spec.Name,
		Class: qos.ClassOf(p).String(),
	}, size)
}

// telDrop accounts one dropped packet against its origin VPN.
func (b *Backbone) telDrop(p *packet.Packet) {
	if p.OriginVPN == "" {
		return
	}
	b.vpnTelFor(p.OriginVPN).dropped.Inc()
	b.tel.Watcher.ObserveDrop(p.OriginVPN)
}

// telRoll closes one export interval: per-link utilization over the interval
// is sampled (the congestion signal for the breach action), then the SLA
// watcher scores the interval.
func (b *Backbone) telRoll(start, end sim.Time) {
	nl := b.G.NumLinks()
	for len(b.telPrevTx) < nl {
		b.telPrevTx = append(b.telPrevTx, 0)
		b.telLastUtil = append(b.telLastUtil, 0)
	}
	secs := (end - start).Seconds()
	for i := 0; i < nl; i++ {
		lid := topo.LinkID(i)
		tx := b.Net.LinkTxBytes(lid)
		u := 0.0
		if secs > 0 {
			u = float64(tx-b.telPrevTx[i]) * 8 / (b.G.Link(lid).Bandwidth * secs)
		}
		b.telLastUtil[i] = u
		b.telPrevTx[i] = tx
	}
	b.tel.Watcher.Eval(end)
}

// hotLinks returns the links whose last-interval utilization reached the
// hot threshold.
func (b *Backbone) hotLinks() map[topo.LinkID]bool {
	hot := make(map[topo.LinkID]bool)
	for i, u := range b.telLastUtil {
		if u >= b.telHotThreshold {
			hot[topo.LinkID(i)] = true
		}
	}
	return hot
}

// breachReoptimize is the default SLA breach action: every TE LSP carrying
// the breached VPN whose path crosses a congested link is re-signalled
// make-before-break onto a path avoiding all currently-hot links, and the
// ingress steering entry is repointed. LSPs already clear of hot links are
// left alone — reoptimizing them would not help.
func (b *Backbone) breachReoptimize(vpn string) {
	if b.RSVP == nil {
		return
	}
	hot := b.hotLinks()
	if len(hot) == 0 {
		return
	}
	for _, req := range b.teRequests {
		if req.vpn != vpn && req.vpn != "" {
			continue
		}
		if req.lsp == nil || req.lsp.State != rsvp.Up {
			continue
		}
		crossesHot := false
		for _, lid := range req.lsp.Path.Links {
			if hot[lid] {
				crossesHot = true
				break
			}
		}
		if !crossesHot {
			continue
		}
		nl, err := b.RSVP.ReoptimizeAvoiding(req.lsp.ID, hot)
		if err != nil {
			continue // no cooler path exists; stay put
		}
		req.lsp = nl
		b.routers[req.ingress].SetTE(teKeyFor(req), nl.Entry)
	}
}
