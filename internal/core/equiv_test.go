package core

import (
	"fmt"
	"strings"
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/rsvp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/telemetry"
	"mplsvpn/internal/trafgen"
)

// The serial-vs-parallel equivalence harness: every scenario below runs
// once on the serial engine and once per shard count, and the complete
// observable output — StateDigest, network counters, per-flow statistics,
// and the full telemetry snapshot (metrics, flow records, journal, SLA
// status) — must be byte-identical.
//
// Scenarios use open-loop sources (CBR/Poisson/OnOff) and control-plane
// actions on the global band (failures, restores, TE (re)signalling,
// telemetry export ticks); that is exactly the class of workload the
// sharded backend promises to reproduce bit-for-bit. Closed-loop feedback
// (AIMD, request/response) is exercised separately for determinism, not
// serial-equality (see TestShardedAIMDDeterministic).

// equivScenario builds a backbone, then attaches traffic after the engine
// mode is fixed (traffic sources bind to shard clocks at attach time).
type equivScenario struct {
	name    string
	dur     sim.Time
	build   func() *Backbone
	traffic func(b *Backbone) []*trafgen.Flow
}

// fingerprint renders everything observable about a finished run.
func fingerprint(b *Backbone, flows []*trafgen.Flow) string {
	var sb strings.Builder
	sb.WriteString(b.StateDigest())
	fmt.Fprintf(&sb, "net: injected=%d delivered=%d dropped=%d isolation=%d\n",
		b.Net.Injected, b.Net.Delivered, b.Net.Dropped, b.IsolationViolations)
	for _, f := range flows {
		sb.WriteString(f.Stats.Summary())
		sb.WriteByte('\n')
	}
	if snap := b.TelemetrySnapshot(); snap != nil {
		sb.WriteString(snap.Text())
	}
	return sb.String()
}

// runEquiv executes one scenario: shards == 0 means the serial engine.
func runEquiv(t *testing.T, sc equivScenario, shards, workers int) string {
	t.Helper()
	b := sc.build()
	if shards > 0 {
		if _, err := b.EnableSharding(ShardingOptions{Shards: shards, Workers: workers}); err != nil {
			t.Fatalf("%s: EnableSharding(%d): %v", sc.name, shards, err)
		}
	}
	flows := sc.traffic(b)
	b.Net.RunUntil(sc.dur)
	if err := b.Net.CheckConservation(); err != nil {
		t.Fatalf("%s shards=%d: %v", sc.name, shards, err)
	}
	return fingerprint(b, flows)
}

// diffLine points at the first diverging line of two fingerprints.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %q\n  parallel: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length: serial %d lines, parallel %d lines", len(al), len(bl))
}

func equivScenarios() []equivScenario {
	return []equivScenario{
		{
			// Two VPNs meshed over the 4-PE backbone with hybrid (PQ+WFQ)
			// scheduling, voice CBR and Poisson data, the SLA watcher armed,
			// and export ticks pre-scheduled on the global band.
			name: "qos-mesh",
			dur:  400 * sim.Millisecond,
			build: func() *Backbone {
				b := fourPEBackboneForTest(Config{Seed: 11, Scheduler: SchedHybrid})
				b.DefineVPN("corp")
				b.DefineVPN("eng")
				pes := []string{"PE1", "PE2", "PE3", "PE4"}
				for i := 0; i < 4; i++ {
					b.AddSite(SiteSpec{VPN: "corp", Name: fmt.Sprintf("c%d", i), PE: pes[i],
						Prefixes: []addr.Prefix{addr.NewPrefix(addr.IPv4(0x0a010000|uint32(i)<<8), 24)}})
				}
				for i := 0; i < 2; i++ {
					b.AddSite(SiteSpec{VPN: "eng", Name: fmt.Sprintf("e%d", i), PE: pes[i*2],
						Prefixes: []addr.Prefix{addr.NewPrefix(addr.IPv4(0x0a020000|uint32(i)<<8), 24)}})
				}
				b.ConvergeVPNs()
				b.EnableTelemetry(TelemetryOptions{
					Interval: 100 * sim.Millisecond,
					Horizon:  400 * sim.Millisecond,
					SLAs: []telemetry.SLATarget{
						{VPN: "corp", MaxP99Ms: 50, MaxLoss: 0.05},
					},
				})
				return b
			},
			traffic: func(b *Backbone) []*trafgen.Flow {
				var flows []*trafgen.Flow
				pairs := [][2]string{{"c0", "c2"}, {"c1", "c3"}, {"c3", "c0"}, {"e0", "e1"}}
				for i, pr := range pairs {
					f, err := b.FlowBetween(fmt.Sprintf("f%d", i), pr[0], pr[1], 5060)
					if err != nil {
						panic(err)
					}
					// Distinct phases: no two sources ever inject at the
					// same instant, so event ordering is unambiguous.
					start := sim.Time(i) * 137 * sim.Microsecond
					trafgen.CBR(b.Net, f, 160, 20*sim.Millisecond, start, 380*sim.Millisecond)
					flows = append(flows, f)
				}
				d, _ := b.FlowBetween("data", "c2", "c1", 80)
				trafgen.Poisson(b.Net, d, 700, 900, 53*sim.Microsecond, 380*sim.Millisecond, b.E.Rand().Fork())
				return append(flows, d)
			},
		},
		{
			// A 2 Mb/s bottleneck hammered past capacity: queue overflow
			// drops, WRED early drops, and drop-path notifications all have
			// to merge deterministically.
			name: "bottleneck-drops",
			dur:  300 * sim.Millisecond,
			build: func() *Backbone {
				b := NewBackbone(Config{Seed: 23, Scheduler: SchedWFQ, WRED: true})
				b.AddPE("PE1")
				b.AddP("P1")
				b.AddP("P2")
				b.AddPE("PE2")
				b.Link("PE1", "P1", 10e6, sim.Millisecond, 1)
				b.Link("P1", "P2", 2e6, 2*sim.Millisecond, 1) // bottleneck
				b.Link("P2", "PE2", 10e6, sim.Millisecond, 1)
				b.BuildProvider()
				b.DefineVPN("acme")
				b.AddSite(SiteSpec{VPN: "acme", Name: "hq", PE: "PE1",
					Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
				b.AddSite(SiteSpec{VPN: "acme", Name: "branch", PE: "PE2",
					Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
				b.ConvergeVPNs()
				b.EnableTelemetry(TelemetryOptions{
					Interval: 100 * sim.Millisecond,
					Horizon:  300 * sim.Millisecond,
				})
				return b
			},
			traffic: func(b *Backbone) []*trafgen.Flow {
				f1, _ := b.FlowBetween("bulk", "hq", "branch", 80)
				trafgen.Poisson(b.Net, f1, 1200, 400, 0, 280*sim.Millisecond, b.E.Rand().Fork())
				f2, _ := b.FlowBetween("burst", "hq", "branch", 8080)
				trafgen.OnOff(b.Net, f2, 1200, 800*sim.Microsecond, 20*sim.Millisecond,
					15*sim.Millisecond, 71*sim.Microsecond, 280*sim.Millisecond, b.E.Rand().Fork())
				f3, _ := b.FlowBetween("back", "branch", "hq", 443)
				trafgen.CBR(b.Net, f3, 400, 5*sim.Millisecond, 29*sim.Microsecond, 280*sim.Millisecond)
				return []*trafgen.Flow{f1, f2, f3}
			},
		},
		{
			// Mid-run link failure and restore on the global band: IGP
			// reconvergence, an RSVP-TE LSP torn off its path, and the
			// resilience plane retrying — all while CBR traffic flows.
			name: "failure-reconverge",
			dur:  500 * sim.Millisecond,
			build: func() *Backbone {
				b := fourPEBackboneForTest(Config{Seed: 31, Scheduler: SchedHybrid})
				b.DefineVPN("v")
				b.AddSite(SiteSpec{VPN: "v", Name: "a", PE: "PE1",
					Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
				b.AddSite(SiteSpec{VPN: "v", Name: "z", PE: "PE4",
					Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
				b.ConvergeVPNs()
				if _, err := b.SetupTELSPForVPN("te-az", "PE1", "PE4", "v", 1e6, -1, rsvp.SetupOptions{}); err != nil {
					panic(err)
				}
				b.EnableResilience(ResilienceOptions{})
				b.EnableTelemetry(TelemetryOptions{
					Interval: 100 * sim.Millisecond,
					Horizon:  500 * sim.Millisecond,
				})
				return b
			},
			traffic: func(b *Backbone) []*trafgen.Flow {
				f, _ := b.FlowBetween("voice", "a", "z", 5060)
				trafgen.CBR(b.Net, f, 160, 10*sim.Millisecond, 17*sim.Microsecond, 480*sim.Millisecond)
				r, _ := b.FlowBetween("rev", "z", "a", 5062)
				trafgen.CBR(b.Net, r, 160, 10*sim.Millisecond, 5*sim.Millisecond+313*sim.Microsecond, 480*sim.Millisecond)
				b.E.Schedule(150*sim.Millisecond, func() {
					if err := b.FailLink("P1", "P2", 10*sim.Millisecond); err != nil {
						panic(err)
					}
				})
				b.E.Schedule(350*sim.Millisecond, func() {
					if err := b.RestoreLink("P1", "P2", 10*sim.Millisecond); err != nil {
						panic(err)
					}
				})
				return []*trafgen.Flow{f, r}
			},
		},
		{
			// Extranet: a shared-services VPN exporting into two customer
			// VPNs, checking the isolation counter's deterministic merge.
			name: "extranet",
			dur:  250 * sim.Millisecond,
			build: func() *Backbone {
				b := fourPEBackboneForTest(Config{Seed: 47})
				hub := addr.RouteTarget{Admin: 65000, Assigned: 999}
				b.DefineVPNWithRTs("cust1", []addr.RouteTarget{{Admin: 65000, Assigned: 1}, hub}, []addr.RouteTarget{{Admin: 65000, Assigned: 1}})
				b.DefineVPNWithRTs("cust2", []addr.RouteTarget{{Admin: 65000, Assigned: 2}, hub}, []addr.RouteTarget{{Admin: 65000, Assigned: 2}})
				b.DefineVPNWithRTs("shared", []addr.RouteTarget{{Admin: 65000, Assigned: 999}}, []addr.RouteTarget{hub})
				b.AddSite(SiteSpec{VPN: "cust1", Name: "s1", PE: "PE1",
					Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
				b.AddSite(SiteSpec{VPN: "cust2", Name: "s2", PE: "PE2",
					Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
				b.AddSite(SiteSpec{VPN: "shared", Name: "svc", PE: "PE4",
					Prefixes: []addr.Prefix{addr.MustParsePrefix("10.9.0.0/16")}})
				b.ConvergeVPNs()
				return b
			},
			traffic: func(b *Backbone) []*trafgen.Flow {
				f1, err := b.FlowBetween("c1-svc", "s1", "svc", 443)
				if err != nil {
					panic(err)
				}
				trafgen.CBR(b.Net, f1, 300, 4*sim.Millisecond, 0, 230*sim.Millisecond)
				f2, err := b.FlowBetween("c2-svc", "s2", "svc", 443)
				if err != nil {
					panic(err)
				}
				trafgen.CBR(b.Net, f2, 300, 4*sim.Millisecond, 507*sim.Microsecond, 230*sim.Millisecond)
				return []*trafgen.Flow{f1, f2}
			},
		},
	}
}

// TestSerialParallelEquivalence is the tentpole's acceptance gate: for
// every scenario, parallel runs at 1, 2, and 8 shards must be
// byte-identical to the serial engine.
func TestSerialParallelEquivalence(t *testing.T) {
	for _, sc := range equivScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			want := runEquiv(t, sc, 0, 0)
			for _, shards := range []int{1, 2, 8} {
				got := runEquiv(t, sc, shards, 4)
				if got != want {
					t.Errorf("shards=%d diverged from serial at %s", shards, diffLine(want, got))
				}
			}
		})
	}
}

// TestParallelWorkerInvariance pins the second half of the determinism
// claim: for a fixed shard count, the worker-pool size must not change a
// single byte.
func TestParallelWorkerInvariance(t *testing.T) {
	sc := equivScenarios()[0]
	want := runEquiv(t, sc, 4, 1)
	for _, workers := range []int{2, 3, 8} {
		got := runEquiv(t, sc, 4, workers)
		if got != want {
			t.Errorf("workers=%d diverged from workers=1 at %s", workers, diffLine(want, got))
		}
	}
}

// TestShardedAIMDDeterministic: closed-loop AIMD reacts at barrier
// granularity under sharding (documented approximation), so it is not
// serial-identical — but it must still be run-to-run deterministic and
// must still make progress.
func TestShardedAIMDDeterministic(t *testing.T) {
	run := func(workers int) string {
		b := fourPEBackboneForTest(Config{Seed: 5, Scheduler: SchedHybrid})
		b.DefineVPN("v")
		b.AddSite(SiteSpec{VPN: "v", Name: "a", PE: "PE1",
			Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
		b.AddSite(SiteSpec{VPN: "v", Name: "z", PE: "PE4",
			Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
		b.ConvergeVPNs()
		if _, err := b.EnableSharding(ShardingOptions{Shards: 4, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		f, _ := b.FlowBetween("bulk", "a", "z", 80)
		a := b.AttachAIMD(f, 1200, 400*sim.Millisecond)
		a.Start(0)
		b.Net.RunUntil(500 * sim.Millisecond)
		if f.Stats.Delivered == 0 {
			t.Fatal("AIMD made no progress under sharding")
		}
		return fingerprint(b, []*trafgen.Flow{f})
	}
	want := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != want {
			t.Errorf("AIMD workers=%d diverged at %s", workers, diffLine(want, got))
		}
	}
}

// TestEquivalenceIsNotVacuous: the harness only proves something if the
// partition really splits the topology and packets really cross shards.
func TestEquivalenceIsNotVacuous(t *testing.T) {
	sc := equivScenarios()[0]
	b := sc.build()
	pr, err := b.EnableSharding(ShardingOptions{Shards: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumShards < 2 {
		t.Fatalf("partition collapsed to %d shard(s)", pr.NumShards)
	}
	if pr.CutLinks == 0 {
		t.Fatal("partition cut no links")
	}
	sc.traffic(b)
	b.Net.RunUntil(sc.dur)
	if b.Net.CrossShardHandoffs() == 0 {
		t.Fatal("no packet ever crossed a shard boundary")
	}
	if b.Net.Delivered == 0 {
		t.Fatal("no deliveries")
	}
	t.Logf("shards=%d cutLinks=%d quantum=%v handoffs=%d delivered=%d",
		pr.NumShards, pr.CutLinks, pr.MinCutDelay, b.Net.CrossShardHandoffs(), b.Net.Delivered)
}

// TestEnableShardingValidation: misuse surfaces as errors, not corruption.
func TestEnableShardingValidation(t *testing.T) {
	b := buildSmall(Config{Seed: 1})
	twoSites(b)
	if _, err := b.EnableSharding(ShardingOptions{Shards: 0}); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := b.EnableSharding(ShardingOptions{Shards: 2, Quantum: sim.Second}); err == nil {
		t.Error("oversized quantum accepted")
	}
	if _, err := b.EnableSharding(ShardingOptions{Shards: 2}); err != nil {
		t.Fatalf("valid sharding rejected: %v", err)
	}
	// Digest must not change because of the partition.
	if got, want := b.StateDigest(), func() string {
		b2 := buildSmall(Config{Seed: 1})
		twoSites(b2)
		return b2.StateDigest()
	}(); got != want {
		t.Error("EnableSharding changed StateDigest")
	}
}
