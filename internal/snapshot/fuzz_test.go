package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotDecode is the hostile-checkpoint contract: whatever bytes a
// torn write, disk corruption, or version skew produce, Decode either
// returns a structurally complete File or one of the typed errors — never a
// panic, never an unbounded allocation, never a half-decoded container.
func FuzzSnapshotDecode(f *testing.F) {
	// A realistic multi-section checkpoint as the main seed.
	mk := NewFile()
	var w Writer
	w.Str("snap-equiv")
	w.U64(42)
	w.I64(-7)
	mk.Add("manifest", w.Data())
	mk.Add("engine", []byte{0x01, 0x80, 0x80, 0x01})
	mk.Add("empty", nil)
	valid := mk.Encode()
	f.Add(valid)

	// Truncations at interesting boundaries.
	for _, n := range []int{0, 3, 4, 5, len(valid) / 2, len(valid) - 5, len(valid) - 1} {
		if n >= 0 && n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// Version skew: a well-formed file claiming a future format.
	var vw Writer
	vw.b = append(vw.b, magic...)
	vw.U64(Version + 3)
	vw.U64(0)
	f.Add(reseal(vw.Data()))
	// Bit flips in header, section table, and trailer.
	for _, i := range []int{0, 4, 5, 8, len(valid) - 2} {
		bad := append([]byte(nil), valid...)
		bad[i] ^= 0x10
		f.Add(bad)
	}
	// Absurd declared counts behind a valid CRC.
	var cw Writer
	cw.b = append(cw.b, magic...)
	cw.U64(Version)
	cw.U64(1 << 50)
	f.Add(reseal(cw.Data()))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			if file != nil {
				t.Fatal("partial File escaped a failed decode")
			}
			return
		}
		// Accepted input must round-trip losslessly: re-encoding and
		// re-decoding the container preserves version, section order, and
		// every payload. (Byte equality is not required — the varint decoder
		// tolerates non-minimal encodings that Encode canonicalizes.)
		file2, err := Decode(file.Encode())
		if err != nil {
			t.Fatalf("re-encoded container does not decode: %v", err)
		}
		if file2.Version != file.Version {
			t.Fatalf("version changed across round-trip: %d -> %d", file.Version, file2.Version)
		}
		names, names2 := file.Names(), file2.Names()
		if len(names) != len(names2) {
			t.Fatalf("section count changed: %d -> %d", len(names), len(names2))
		}
		for i, name := range names {
			if names2[i] != name {
				t.Fatalf("section %d renamed: %q -> %q", i, name, names2[i])
			}
			a, _ := file.Section(name)
			b, ok := file2.Section(name)
			if !ok || !bytes.Equal(a, b) {
				t.Fatalf("section %q payload changed across round-trip", name)
			}
		}
	})
}
