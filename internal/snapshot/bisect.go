package snapshot

import (
	"errors"
	"fmt"
	"sort"
)

// Bisection of chaos failures. A deterministic run that ends with a
// violated invariant (isolation, loop-freedom, byte conservation) defines a
// monotone predicate over virtual time: once violated, violated forever.
// Given the run's checkpoints, the first offending window can therefore be
// found by binary search, where each probe restores the nearest checkpoint
// and replays only up to the probe time — O(log n) partial replays instead
// of one full rerun per candidate window.

// ErrNotViolated reports a bisection whose predicate never fired, i.e. the
// run does not actually violate the invariant by its final checkpoint.
var ErrNotViolated = errors.New("snapshot: invariant not violated by final probe time")

// Window is the localized result: the violation first occurs in (Lo, Hi].
type Window struct {
	Lo, Hi int64
}

// Probe evaluates the violation predicate at virtual time t, typically by
// restoring the newest checkpoint at or before t and replaying forward to
// t. It reports whether the invariant has been violated by t.
type Probe func(t int64) (violated bool, err error)

// Bisect localizes the first violation over the sorted probe times (usually
// checkpoint times plus the horizon). It assumes the predicate is monotone
// and returns the tightest window (times[i-1], times[i]] containing the
// first violation, along with the number of probes spent. Lo is 0 when the
// violation predates the first probe time.
func Bisect(times []int64, probe Probe) (Window, int, error) {
	if len(times) == 0 {
		return Window{}, 0, fmt.Errorf("snapshot: bisect needs at least one probe time")
	}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		return Window{}, 0, fmt.Errorf("snapshot: bisect probe times must be sorted")
	}
	probes := 0
	// Invariant: violated(times[hi]) is true, violated(times[lo]) is false
	// (virtual positions lo=-1 and hi=len-1 before validation).
	last, err := probe(times[len(times)-1])
	probes++
	if err != nil {
		return Window{}, probes, err
	}
	if !last {
		return Window{}, probes, ErrNotViolated
	}
	lo, hi := -1, len(times)-1
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		v, err := probe(times[mid])
		probes++
		if err != nil {
			return Window{}, probes, err
		}
		if v {
			hi = mid
		} else {
			lo = mid
		}
	}
	w := Window{Hi: times[hi]}
	if lo >= 0 {
		w.Lo = times[lo]
	}
	return w, probes, nil
}
