// Package snapshot implements versioned, forward-compatible binary
// serialization for simulation checkpoints: a primitive codec
// (varint/zigzag/length-prefixed), a section-framed container with a CRC32
// integrity trailer, an atomic on-disk checkpoint store with retention, and
// a bisector that localizes failures by partial replays between
// checkpoints.
//
// The decoder is hostile-input safe by construction: every read is bounds
// checked, element counts are validated against the bytes that remain, and
// malformed input surfaces as a typed error (ErrTruncated, ErrCorrupt,
// ErrVersion) — never a panic and never an out-of-bounds allocation. That
// contract is what lets a restore parse an entire checkpoint into plain
// data before touching any live state.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Typed decode failures. Restores must treat any of them as "this file does
// not exist": no partial state may have been applied.
var (
	// ErrTruncated reports input that ends before a declared field.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrCorrupt reports structurally invalid input: bad magic, a CRC
	// mismatch, a malformed varint, or a length that exceeds the input.
	ErrCorrupt = errors.New("snapshot: corrupt input")
	// ErrVersion reports a checkpoint written by a newer format version.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrMismatch reports a checkpoint that decoded cleanly but does not
	// belong to the scenario being restored (fingerprint or shape skew).
	ErrMismatch = errors.New("snapshot: checkpoint does not match scenario")
)

// Writer encodes primitives into a growing byte buffer. The zero value is
// ready to use.
type Writer struct {
	b []byte
}

// Data returns the encoded bytes.
func (w *Writer) Data() []byte { return w.b }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.b) }

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// I64 appends a zigzag-encoded signed varint.
func (w *Writer) I64(v int64) { w.b = binary.AppendVarint(w.b, v) }

// F64 appends a float64 as its IEEE 754 bit pattern (fixed 8 bytes), so the
// value round-trips exactly, NaN payloads included.
func (w *Writer) F64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}

// Bool appends a single 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.b = append(w.b, p...)
}

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	w.b = append(w.b, s...)
}

// Reader decodes primitives with a sticky error: after the first failure
// every read returns a zero value and Err reports the cause. Callers batch
// reads and check Err once per record, keeping decode loops linear and
// panic-free.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{b: data} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(err error, what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", err, what, r.off)
	}
}

// U64 decodes an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated, "uvarint")
		} else {
			r.fail(ErrCorrupt, "uvarint overflow")
		}
		return 0
	}
	r.off += n
	return v
}

// I64 decodes a zigzag-encoded signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated, "varint")
		} else {
			r.fail(ErrCorrupt, "varint overflow")
		}
		return 0
	}
	r.off += n
	return v
}

// F64 decodes a fixed 8-byte IEEE 754 value.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(ErrTruncated, "float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Bool decodes a single byte; any value other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < 1 {
		r.fail(ErrTruncated, "bool")
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.fail(ErrCorrupt, "bool")
		return false
	}
	return v == 1
}

// Bytes decodes a length-prefixed byte string, aliasing the input buffer.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated, "bytes body")
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

// Str decodes a length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }

// Count decodes an element count and validates it against the bytes that
// remain (every element costs at least minElemBytes), so a crafted count
// can never drive an oversized allocation or a runaway loop.
func (r *Reader) Count(minElemBytes int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(r.Remaining()/minElemBytes) {
		r.fail(ErrCorrupt, "element count exceeds input")
		return 0
	}
	return int(n)
}

// Container format: magic, format version, named length-prefixed sections,
// CRC32 (Castagnoli) trailer over everything before it.

// Version is the current container format version. Decoders accept any file
// whose version is <= Version (older fields read with defaults, unknown
// sections ignored by name lookup) and refuse newer files with ErrVersion.
const Version = 1

var magic = []byte{'M', 'V', 'S', 'N'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// File is a decoded (or under-construction) checkpoint container.
type File struct {
	Version  uint64
	names    []string
	sections map[string][]byte
}

// NewFile returns an empty container at the current version.
func NewFile() *File {
	return &File{Version: Version, sections: make(map[string][]byte)}
}

// Add appends a named section. Adding a name twice replaces the payload but
// keeps the original position.
func (f *File) Add(name string, data []byte) {
	if _, ok := f.sections[name]; !ok {
		f.names = append(f.names, name)
	}
	f.sections[name] = data
}

// Section returns a named section's payload.
func (f *File) Section(name string) ([]byte, bool) {
	p, ok := f.sections[name]
	return p, ok
}

// Names returns the section names in file order.
func (f *File) Names() []string { return f.names }

// Encode serializes the container: magic, version, section count, sections,
// CRC32C trailer.
func (f *File) Encode() []byte {
	var w Writer
	w.b = append(w.b, magic...)
	w.U64(f.Version)
	w.U64(uint64(len(f.names)))
	for _, name := range f.names {
		w.Str(name)
		w.Bytes(f.sections[name])
	}
	sum := crc32.Checksum(w.b, crcTable)
	w.b = binary.LittleEndian.AppendUint32(w.b, sum)
	return w.b
}

// Decode parses and integrity-checks a container. Any structural problem
// returns a typed error; no partially decoded File escapes.
func Decode(data []byte) (*File, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("%w: %d bytes is below the minimum container size", ErrTruncated, len(data))
	}
	for i, m := range magic {
		if data[i] != m {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	r := NewReader(body[len(magic):])
	f := &File{sections: make(map[string][]byte)}
	f.Version = r.U64()
	if r.Err() == nil && f.Version > Version {
		return nil, fmt.Errorf("%w: file version %d, decoder supports <= %d", ErrVersion, f.Version, Version)
	}
	n := r.Count(2) // a section costs at least an empty name + empty body
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.Str()
		payload := r.Bytes()
		if r.Err() != nil {
			break
		}
		if _, dup := f.sections[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		f.names = append(f.names, name)
		f.sections[name] = payload
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, r.Remaining())
	}
	return f, nil
}
