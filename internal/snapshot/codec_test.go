package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var w Writer
	w.U64(0)
	w.U64(1)
	w.U64(math.MaxUint64)
	w.I64(0)
	w.I64(-1)
	w.I64(math.MinInt64)
	w.I64(math.MaxInt64)
	w.F64(0)
	w.F64(-2.5)
	w.F64(math.Inf(1))
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	w.Str("hello")
	w.Str("")

	r := NewReader(w.Data())
	checks := []struct {
		name string
		ok   bool
	}{
		{"u64 0", r.U64() == 0},
		{"u64 1", r.U64() == 1},
		{"u64 max", r.U64() == math.MaxUint64},
		{"i64 0", r.I64() == 0},
		{"i64 -1", r.I64() == -1},
		{"i64 min", r.I64() == math.MinInt64},
		{"i64 max", r.I64() == math.MaxInt64},
		{"f64 0", r.F64() == 0},
		{"f64 -2.5", r.F64() == -2.5},
		{"f64 +inf", math.IsInf(r.F64(), 1)},
		{"bool true", r.Bool()},
		{"bool false", !r.Bool()},
		{"bytes", string(r.Bytes()) == "\x01\x02\x03"},
		{"bytes empty", len(r.Bytes()) == 0},
		{"str", r.Str() == "hello"},
		{"str empty", r.Str() == ""},
	}
	for _, c := range checks {
		if !c.ok {
			t.Errorf("%s did not round-trip", c.name)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

// F64 must preserve the exact bit pattern, NaN payloads included — a
// restored RNG or token bucket may never drift by a ULP.
func TestF64BitExact(t *testing.T) {
	nan := math.Float64frombits(0x7ff8dead_beef0001)
	var w Writer
	w.F64(nan)
	r := NewReader(w.Data())
	if got := math.Float64bits(r.F64()); got != 0x7ff8dead_beef0001 {
		t.Errorf("NaN payload lost: %016x", got)
	}
}

// The reader's error is sticky: after the first failure, every subsequent
// read returns a zero value and Err keeps reporting the first cause.
func TestReaderStickyError(t *testing.T) {
	r := NewReader(nil)
	if v := r.U64(); v != 0 {
		t.Errorf("U64 on empty input = %d", v)
	}
	first := r.Err()
	if !errors.Is(first, ErrTruncated) {
		t.Fatalf("first error = %v, want ErrTruncated", first)
	}
	_ = r.I64()
	_ = r.F64()
	_ = r.Bool()
	_ = r.Bytes()
	_ = r.Count(1)
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("error not sticky: %v", r.Err())
	}
}

func TestReaderTruncation(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		read func(r *Reader)
	}{
		{"uvarint continuation", []byte{0x80}, func(r *Reader) { r.U64() }},
		{"varint continuation", []byte{0x80}, func(r *Reader) { r.I64() }},
		{"float", []byte{1, 2, 3}, func(r *Reader) { r.F64() }},
		{"bool", nil, func(r *Reader) { r.Bool() }},
		{"bytes body", []byte{5, 'a', 'b'}, func(r *Reader) { r.Bytes() }},
	}
	for _, c := range cases {
		r := NewReader(c.data)
		c.read(r)
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Errorf("%s: err = %v, want ErrTruncated", c.name, r.Err())
		}
	}
}

func TestReaderCorrupt(t *testing.T) {
	// An 11-byte all-continuation varint overflows.
	over := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	r := NewReader(over)
	r.U64()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("uvarint overflow: err = %v, want ErrCorrupt", r.Err())
	}
	r = NewReader([]byte{2})
	r.Bool()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("bool byte 2: err = %v, want ErrCorrupt", r.Err())
	}
}

// Count is the allocation guard: a declared element count that could not
// possibly fit in the remaining bytes is corrupt, so a crafted header can
// never drive make([]T, huge).
func TestCountGuard(t *testing.T) {
	var w Writer
	w.U64(1 << 40)
	r := NewReader(w.Data())
	if n := r.Count(8); n != 0 {
		t.Errorf("Count = %d on absurd input", n)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", r.Err())
	}

	// A plausible count passes.
	w = Writer{}
	w.U64(3)
	w.Bool(true)
	w.Bool(false)
	w.Bool(true)
	r = NewReader(w.Data())
	if n := r.Count(1); n != 3 {
		t.Errorf("Count = %d, want 3", n)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestContainerRoundTrip(t *testing.T) {
	f := NewFile()
	f.Add("alpha", []byte{1, 2, 3})
	f.Add("beta", nil)
	f.Add("alpha", []byte{9}) // replace keeps position
	data := f.Encode()

	g, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Version != Version {
		t.Errorf("version = %d", g.Version)
	}
	names := g.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("names = %v", names)
	}
	a, ok := g.Section("alpha")
	if !ok || string(a) != "\x09" {
		t.Errorf("alpha = %v, %v", a, ok)
	}
	if _, ok := g.Section("gamma"); ok {
		t.Error("phantom section")
	}
}

func TestContainerRejectsDamage(t *testing.T) {
	f := NewFile()
	f.Add("s", []byte("payload"))
	good := f.Encode()

	// Every truncation of a valid file fails with a typed error.
	for n := 0; n < len(good); n++ {
		if _, err := Decode(good[:n]); err == nil {
			t.Fatalf("Decode accepted %d-byte truncation", n)
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: untyped error %v", n, err)
		}
	}
	// Every single-bit flip fails (CRC32C catches them all).
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("Decode accepted bit flip at byte %d", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: error %v, want ErrCorrupt", i, err)
		}
	}
}

// reseal recomputes the CRC trailer over a tampered body, so tests can reach
// the structural checks behind the integrity check.
func reseal(body []byte) []byte {
	sum := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(body, sum)
}

func TestContainerRejectsFutureVersion(t *testing.T) {
	var w Writer
	w.b = append(w.b, magic...)
	w.U64(Version + 1)
	w.U64(0)
	if _, err := Decode(reseal(w.Data())); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: err = %v, want ErrVersion", err)
	}
}

func TestContainerRejectsDuplicateSection(t *testing.T) {
	var w Writer
	w.b = append(w.b, magic...)
	w.U64(Version)
	w.U64(2)
	w.Str("dup")
	w.Bytes([]byte{1})
	w.Str("dup")
	w.Bytes([]byte{2})
	if _, err := Decode(reseal(w.Data())); !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicate section: err = %v, want ErrCorrupt", err)
	}
}

func TestContainerRejectsTrailingBytes(t *testing.T) {
	var w Writer
	w.b = append(w.b, magic...)
	w.U64(Version)
	w.U64(0)
	w.b = append(w.b, 0xAA)
	if _, err := Decode(reseal(w.Data())); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
}
