package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoCheckpoint reports an empty checkpoint directory.
var ErrNoCheckpoint = errors.New("snapshot: no checkpoint found")

// Store manages a directory of periodic checkpoints with atomic
// write-rename publication and bounded retention. File names embed the
// virtual timestamp (ckpt-%020d.mvsnap), so recovery and bisection order
// checkpoints lexically without opening them.
type Store struct {
	Dir  string
	Keep int // newest checkpoints retained; <= 0 keeps everything
}

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".mvsnap"
)

func (s *Store) path(t int64) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s%020d%s", ckptPrefix, t, ckptSuffix))
}

// Save publishes a checkpoint for virtual time t atomically: the bytes land
// in a temporary file first and only an os.Rename — atomic on POSIX — makes
// them visible under the final name. A crash mid-write therefore never
// leaves a truncated checkpoint where recovery would find it. Older
// checkpoints beyond Keep are pruned after publication.
func (s *Store) Save(t int64, data []byte) (string, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", err
	}
	final := s.path(t)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := s.prune(); err != nil {
		return final, err
	}
	return final, nil
}

// Times lists the virtual timestamps of all published checkpoints, oldest
// first. Unparseable or temporary files are ignored.
func (s *Store) Times() ([]int64, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ts []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		t, err := strconv.ParseInt(num, 10, 64)
		if err != nil {
			continue
		}
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts, nil
}

// Load reads the checkpoint for virtual time t and returns its raw bytes,
// container-decoding them first purely as validation (CRC, structure) so a
// torn or corrupt file surfaces here rather than mid-restore.
func (s *Store) Load(t int64) ([]byte, error) {
	data, err := os.ReadFile(s.path(t))
	if err != nil {
		return nil, err
	}
	if _, err := Decode(data); err != nil {
		return nil, err
	}
	return data, nil
}

// Latest loads the newest checkpoint, returning its virtual time. A
// checkpoint that fails to decode (torn by a crash before the rename
// discipline existed, or hand-corrupted) is skipped and the next-newest
// tried, so recovery degrades to an older consistent state instead of
// failing outright.
func (s *Store) Latest() (int64, []byte, error) {
	ts, err := s.Times()
	if err != nil {
		return 0, nil, err
	}
	for i := len(ts) - 1; i >= 0; i-- {
		data, err := s.Load(ts[i])
		if err == nil {
			return ts[i], data, nil
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			return 0, nil, err
		}
	}
	return 0, nil, ErrNoCheckpoint
}

// LatestAtOrBefore loads the newest checkpoint with time <= t (for
// bisection replays).
func (s *Store) LatestAtOrBefore(t int64) (int64, []byte, error) {
	ts, err := s.Times()
	if err != nil {
		return 0, nil, err
	}
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i] > t {
			continue
		}
		data, err := s.Load(ts[i])
		if err != nil {
			return 0, nil, err
		}
		return ts[i], data, nil
	}
	return 0, nil, ErrNoCheckpoint
}

func (s *Store) prune() error {
	if s.Keep <= 0 {
		return nil
	}
	ts, err := s.Times()
	if err != nil {
		return err
	}
	for len(ts) > s.Keep {
		if err := os.Remove(s.path(ts[0])); err != nil && !os.IsNotExist(err) {
			return err
		}
		ts = ts[1:]
	}
	return nil
}
