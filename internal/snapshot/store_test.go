package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ckptBytes builds a tiny valid checkpoint whose payload identifies t.
func ckptBytes(t int64) []byte {
	f := NewFile()
	var w Writer
	w.I64(t)
	f.Add("payload", w.Data())
	return f.Encode()
}

func TestStoreSaveLoadLatest(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	for _, ct := range []int64{100, 300, 200} {
		if _, err := s.Save(ct, ckptBytes(ct)); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := s.Times()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0] != 100 || ts[1] != 200 || ts[2] != 300 {
		t.Fatalf("Times = %v", ts)
	}
	ct, data, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ct != 300 || !bytes.Equal(data, ckptBytes(300)) {
		t.Errorf("Latest = %d", ct)
	}
	if got, err := s.Load(200); err != nil || !bytes.Equal(got, ckptBytes(200)) {
		t.Errorf("Load(200): %v", err)
	}
	for _, c := range []struct{ at, want int64 }{{250, 200}, {200, 200}, {5000, 300}} {
		ct, _, err := s.LatestAtOrBefore(c.at)
		if err != nil || ct != c.want {
			t.Errorf("LatestAtOrBefore(%d) = %d, %v; want %d", c.at, ct, err, c.want)
		}
	}
	if _, _, err := s.LatestAtOrBefore(99); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("LatestAtOrBefore(99) = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreEmpty(t *testing.T) {
	s := &Store{Dir: filepath.Join(t.TempDir(), "never-created")}
	if ts, err := s.Times(); err != nil || len(ts) != 0 {
		t.Errorf("Times on missing dir = %v, %v", ts, err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Latest on missing dir = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreRetention(t *testing.T) {
	s := &Store{Dir: t.TempDir(), Keep: 2}
	for ct := int64(1); ct <= 5; ct++ {
		if _, err := s.Save(ct, ckptBytes(ct)); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := s.Times()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0] != 4 || ts[1] != 5 {
		t.Errorf("retained %v, want [4 5]", ts)
	}
}

// Latest skips a corrupt newest checkpoint (torn write, disk damage) and
// recovers the next-newest consistent one instead of failing the recovery.
func TestStoreLatestSkipsCorrupt(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	if _, err := s.Save(1, ckptBytes(1)); err != nil {
		t.Fatal(err)
	}
	good := ckptBytes(2)
	if _, err := s.Save(2, good[:len(good)-3]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(2); err == nil {
		t.Fatal("Load accepted the torn checkpoint")
	}
	ct, data, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ct != 1 || !bytes.Equal(data, ckptBytes(1)) {
		t.Errorf("Latest recovered %d, want 1", ct)
	}
}

// Save's write-rename discipline must leave no .tmp debris behind, and a
// stray temporary file from a crashed writer is invisible to Times.
func TestStoreAtomicPublish(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	if _, err := s.Save(7, ckptBytes(7)); err != nil {
		t.Fatal(err)
	}
	stray := s.path(9) + ".tmp"
	if err := os.WriteFile(stray, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") && e.Name() != filepath.Base(stray) {
			t.Errorf("Save left temporary %s", e.Name())
		}
	}
	ts, err := s.Times()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0] != 7 {
		t.Errorf("Times sees stray tmp: %v", ts)
	}
}

func TestBisect(t *testing.T) {
	times := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	mk := func(firstBad int64) Probe {
		return func(tt int64) (bool, error) { return tt >= firstBad, nil }
	}

	w, probes, err := Bisect(times, mk(45))
	if err != nil {
		t.Fatal(err)
	}
	if w.Lo != 40 || w.Hi != 50 {
		t.Errorf("window = (%d, %d], want (40, 50]", w.Lo, w.Hi)
	}
	if probes > 4 { // 1 validation + ceil(log2(8)) = 4
		t.Errorf("probes = %d, want <= 4", probes)
	}

	// Violation predates the first checkpoint: Lo pins to 0.
	w, _, err = Bisect(times, mk(5))
	if err != nil {
		t.Fatal(err)
	}
	if w.Lo != 0 || w.Hi != 10 {
		t.Errorf("early violation window = (%d, %d], want (0, 10]", w.Lo, w.Hi)
	}

	// Clean run: typed refusal after a single probe.
	_, probes, err = Bisect(times, mk(1000))
	if !errors.Is(err, ErrNotViolated) {
		t.Errorf("clean run = %v, want ErrNotViolated", err)
	}
	if probes != 1 {
		t.Errorf("clean run spent %d probes, want 1", probes)
	}

	if _, _, err := Bisect(nil, mk(0)); err == nil {
		t.Error("empty times accepted")
	}
	if _, _, err := Bisect([]int64{30, 10}, mk(0)); err == nil {
		t.Error("unsorted times accepted")
	}

	// A probe error propagates.
	boom := errors.New("probe exploded")
	if _, _, err := Bisect(times, func(int64) (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Errorf("probe error = %v, want propagation", err)
	}
}
