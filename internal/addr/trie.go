package addr

// Table is a longest-prefix-match routing table implemented as a binary
// radix (Patricia-style) trie keyed on prefix bits. It is the lookup
// structure behind every IP forwarding decision in the simulator, and also
// the subject of experiment E4, which compares its per-packet cost with an
// MPLS label-index lookup.
//
// The value type is generic so VRFs, global tables, and IGP tables can all
// reuse it.
type Table[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{root: &trieNode[V]{}}
}

// Len returns the number of installed prefixes.
func (t *Table[V]) Len() int { return t.size }

// Insert installs or replaces the value for prefix p. It reports whether the
// prefix was newly added (false means replaced).
func (t *Table[V]) Insert(p Prefix, v V) bool {
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		b := p.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val = v
	n.set = true
	if added {
		t.size++
	}
	return added
}

// Delete removes prefix p. It reports whether the prefix was present.
// Interior nodes are left in place; tables in this system are built once
// per convergence and rebuilt on change, so compaction is not worth the
// complexity.
func (t *Table[V]) Delete(p Prefix) bool {
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		n = n.child[p.Bit(i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val = zero
	n.set = false
	t.size--
	return true
}

// Exact returns the value installed for exactly prefix p.
func (t *Table[V]) Exact(p Prefix) (V, bool) {
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		n = n.child[p.Bit(i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	return n.val, n.set
}

// Lookup performs longest-prefix match for ip. The boolean is false when no
// installed prefix covers the address.
func (t *Table[V]) Lookup(ip IPv4) (V, bool) {
	n := t.root
	var best V
	found := false
	if n.set {
		best, found = n.val, true
	}
	u := uint32(ip)
	for i := 0; i < 32 && n != nil; i++ {
		b := u >> (31 - i) & 1
		n = n.child[b]
		if n != nil && n.set {
			best, found = n.val, true
		}
	}
	return best, found
}

// LookupPrefix performs longest-prefix match and also returns the matched
// prefix. Slightly slower than Lookup; used where the FEC (the prefix
// itself) matters, such as at an MPLS ingress.
func (t *Table[V]) LookupPrefix(ip IPv4) (Prefix, V, bool) {
	n := t.root
	var best V
	var bestLen uint8
	found := false
	if n.set {
		best, found = n.val, true
	}
	u := uint32(ip)
	for i := 0; i < 32 && n != nil; i++ {
		b := u >> (31 - i) & 1
		n = n.child[b]
		if n != nil && n.set {
			best, bestLen, found = n.val, uint8(i+1), true
		}
	}
	if !found {
		return Prefix{}, best, false
	}
	return NewPrefix(ip, bestLen), best, true
}

// Walk visits every installed prefix in lexicographic bit order. Returning
// false from fn stops the walk.
func (t *Table[V]) Walk(fn func(Prefix, V) bool) {
	var rec func(n *trieNode[V], bits uint32, depth uint8) bool
	rec = func(n *trieNode[V], bits uint32, depth uint8) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(Prefix{Addr: IPv4(bits << (32 - depth) & (^uint32(0) << (32 - depth))), Len: depth}, n.val) {
				return false
			}
		}
		if depth == 32 {
			return true
		}
		if !rec(n.child[0], bits<<1, depth+1) {
			return false
		}
		return rec(n.child[1], bits<<1|1, depth+1)
	}
	// depth 0 needs special handling for the shift; handle the default
	// route directly.
	if t.root.set {
		if !fn(Prefix{}, t.root.val) {
			return
		}
	}
	if !rec(t.root.child[0], 0, 1) {
		return
	}
	rec(t.root.child[1], 1, 1)
}

// Prefixes returns all installed prefixes.
func (t *Table[V]) Prefixes() []Prefix {
	out := make([]Prefix, 0, t.size)
	t.Walk(func(p Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
