package addr

import "mplsvpn/internal/snapshot"

// Snapshot codec helpers shared by every package that serializes addressed
// state. Prefixes and route distinguishers are small fixed tuples, so they
// encode as bare varints with no framing.

// SavePrefix appends p to the snapshot stream.
func SavePrefix(w *snapshot.Writer, p Prefix) {
	w.U64(uint64(p.Addr))
	w.U64(uint64(p.Len))
}

// LoadPrefix decodes a prefix written by SavePrefix.
func LoadPrefix(r *snapshot.Reader) Prefix {
	a := IPv4(uint32(r.U64()))
	l := uint8(r.U64())
	return Prefix{Addr: a, Len: l}
}

// SaveRD appends a route distinguisher.
func SaveRD(w *snapshot.Writer, rd RouteDistinguisher) {
	w.U64(uint64(rd.Admin))
	w.U64(uint64(rd.Assigned))
}

// LoadRD decodes a route distinguisher.
func LoadRD(r *snapshot.Reader) RouteDistinguisher {
	admin := uint16(r.U64())
	assigned := uint32(r.U64())
	return RouteDistinguisher{Admin: admin, Assigned: assigned}
}

// SaveRT appends a route target.
func SaveRT(w *snapshot.Writer, rt RouteTarget) {
	w.U64(uint64(rt.Admin))
	w.U64(uint64(rt.Assigned))
}

// LoadRT decodes a route target.
func LoadRT(r *snapshot.Reader) RouteTarget {
	admin := uint16(r.U64())
	assigned := uint32(r.U64())
	return RouteTarget{Admin: admin, Assigned: assigned}
}

// SaveVPNPrefix appends a VPN-qualified prefix.
func SaveVPNPrefix(w *snapshot.Writer, vp VPNPrefix) {
	SaveRD(w, vp.RD)
	SavePrefix(w, vp.Prefix)
}

// LoadVPNPrefix decodes a VPN-qualified prefix.
func LoadVPNPrefix(r *snapshot.Reader) VPNPrefix {
	rd := LoadRD(r)
	p := LoadPrefix(r)
	return VPNPrefix{RD: rd, Prefix: p}
}
