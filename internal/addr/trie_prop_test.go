package addr

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveTable is the executable specification the trie is checked against:
// a flat prefix list with linear longest-match lookup.
type naiveTable struct {
	entries map[Prefix]int
}

func (n *naiveTable) insert(p Prefix, v int) bool {
	_, existed := n.entries[p]
	n.entries[p] = v
	return !existed
}

func (n *naiveTable) delete(p Prefix) bool {
	_, existed := n.entries[p]
	delete(n.entries, p)
	return existed
}

func (n *naiveTable) lookup(ip IPv4) (Prefix, int, bool) {
	best, bestV, found := Prefix{}, 0, false
	for p, v := range n.entries {
		if !p.Contains(ip) {
			continue
		}
		if !found || p.Len > best.Len {
			best, bestV, found = p, v, true
		}
	}
	return best, bestV, found
}

// randomPrefix draws from a deliberately small universe (few distinct
// address bits, all lengths) so inserts, deletes, and lookups collide
// often — the interesting trie paths are node splits, branch collapses,
// and value-bearing interior nodes.
func randomPrefix(rng *rand.Rand) Prefix {
	length := uint8(rng.Intn(33))
	ip := IPv4(rng.Uint32() & 0xF0F00000) // sparse bit pattern => collisions
	return NewPrefix(ip, length)
}

// TestTableMatchesNaiveModel drives the trie and the naive model through
// the same random operation stream and checks every observable after each
// step: insert/delete return values, Len, Exact, and longest-prefix
// Lookup/LookupPrefix for addresses biased to land inside stored
// prefixes.
func TestTableMatchesNaiveModel(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		trie := NewTable[int]()
		model := &naiveTable{entries: map[Prefix]int{}}

		for op := 0; op < 4000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert (or overwrite)
				p, v := randomPrefix(rng), rng.Intn(1000)
				if got, want := trie.Insert(p, v), model.insert(p, v); got != want {
					t.Fatalf("seed %d op %d: Insert(%v) = %v, want %v", seed, op, p, got, want)
				}
			case 4, 5: // delete a stored prefix when possible
				p := randomPrefix(rng)
				if ps := trie.Prefixes(); len(ps) > 0 && rng.Intn(4) != 0 {
					p = ps[rng.Intn(len(ps))]
				}
				if got, want := trie.Delete(p), model.delete(p); got != want {
					t.Fatalf("seed %d op %d: Delete(%v) = %v, want %v", seed, op, p, got, want)
				}
			case 6: // exact match
				p := randomPrefix(rng)
				gotV, gotOK := trie.Exact(p)
				wantV, wantOK := model.entries[p]
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Fatalf("seed %d op %d: Exact(%v) = %v,%v want %v,%v",
						seed, op, p, gotV, gotOK, wantV, wantOK)
				}
			default: // longest-prefix lookup
				ip := IPv4(rng.Uint32() & 0xF0F0FFFF)
				if ps := trie.Prefixes(); len(ps) > 0 && rng.Intn(3) != 0 {
					base := ps[rng.Intn(len(ps))]
					ip = base.Addr | (IPv4(rng.Uint32()) & ^IPv4(0) >> base.Len >> 1)
				}
				gotV, gotOK := trie.Lookup(ip)
				wantP, wantV, wantOK := model.lookup(ip)
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Fatalf("seed %d op %d: Lookup(%v) = %v,%v want %v,%v",
						seed, op, ip, gotV, gotOK, wantV, wantOK)
				}
				gp, gv, gok := trie.LookupPrefix(ip)
				if gok != wantOK || (gok && (gp != wantP || gv != wantV)) {
					t.Fatalf("seed %d op %d: LookupPrefix(%v) = %v,%v,%v want %v,%v,%v",
						seed, op, ip, gp, gv, gok, wantP, wantV, wantOK)
				}
			}
			if trie.Len() != len(model.entries) {
				t.Fatalf("seed %d op %d: Len = %d, model %d", seed, op, trie.Len(), len(model.entries))
			}
		}

		// Final structural check: Walk must enumerate exactly the model.
		got := map[Prefix]int{}
		trie.Walk(func(p Prefix, v int) bool {
			if _, dup := got[p]; dup {
				t.Fatalf("seed %d: Walk visited %v twice", seed, p)
			}
			got[p] = v
			return true
		})
		if len(got) != len(model.entries) {
			t.Fatalf("seed %d: Walk saw %d entries, model %d", seed, len(got), len(model.entries))
		}
		for p, v := range model.entries {
			if got[p] != v {
				t.Fatalf("seed %d: Walk value for %v = %d, want %d", seed, p, got[p], v)
			}
		}
		// And Prefixes must agree with Walk.
		ps := trie.Prefixes()
		sort.Slice(ps, func(i, j int) bool {
			return ps[i].Addr < ps[j].Addr || (ps[i].Addr == ps[j].Addr && ps[i].Len < ps[j].Len)
		})
		for i := 1; i < len(ps); i++ {
			if ps[i] == ps[i-1] {
				t.Fatalf("seed %d: Prefixes returned %v twice", seed, ps[i])
			}
		}
		if len(ps) != len(model.entries) {
			t.Fatalf("seed %d: Prefixes len %d, model %d", seed, len(ps), len(model.entries))
		}
	}
}

// TestTableDeleteCollapses fills and fully drains the trie several times:
// after each full drain every lookup must miss and Len must be zero, so
// delete really unlinks structure instead of leaving value-less husks
// that would shadow later inserts.
func TestTableDeleteCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trie := NewTable[int]()
	for round := 0; round < 20; round++ {
		inserted := map[Prefix]bool{}
		for i := 0; i < 100; i++ {
			p := randomPrefix(rng)
			trie.Insert(p, i)
			inserted[p] = true
		}
		for p := range inserted {
			if !trie.Delete(p) {
				t.Fatalf("round %d: Delete(%v) missed a stored prefix", round, p)
			}
		}
		if trie.Len() != 0 {
			t.Fatalf("round %d: Len = %d after full drain", round, trie.Len())
		}
		if _, ok := trie.Lookup(IPv4(rng.Uint32())); ok {
			t.Fatalf("round %d: lookup hit in a drained table", round)
		}
	}
}
