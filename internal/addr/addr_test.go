package addr

import (
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in   string
		want IPv4
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.1.2.3", 0x0a010203, true},
		{"192.168.0.1", 0xc0a80001, true},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIPv4(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseIPv4(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseIPv4(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIPv4StringRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		ip := IPv4(u)
		back, err := ParseIPv4(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if p.Addr != MustParseIPv4("10.1.0.0") || p.Len != 16 {
		t.Fatalf("got %v", p)
	}
	// Host bits must be masked.
	p = MustParsePrefix("10.1.2.3/16")
	if p.Addr != MustParseIPv4("10.1.0.0") {
		t.Fatalf("host bits not masked: %v", p)
	}
	if _, err := ParsePrefix("10.0.0.0/33"); err == nil {
		t.Fatal("accepted /33")
	}
	if _, err := ParsePrefix("10.0.0.0"); err == nil {
		t.Fatal("accepted prefix without length")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseIPv4("10.255.0.1")) {
		t.Fatal("10/8 should contain 10.255.0.1")
	}
	if p.Contains(MustParseIPv4("11.0.0.0")) {
		t.Fatal("10/8 should not contain 11.0.0.0")
	}
	def := Prefix{}
	if !def.Contains(MustParseIPv4("1.2.3.4")) {
		t.Fatal("default route should contain everything")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("10/8 and 10.1/16 overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("10/8 and 11/8 do not overlap")
	}
}

func TestRDEncodeRoundTrip(t *testing.T) {
	f := func(admin uint16, assigned uint32) bool {
		rd := RouteDistinguisher{Admin: admin, Assigned: assigned}
		back, err := DecodeRD(rd.Encode())
		return err == nil && back == rd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRDBadType(t *testing.T) {
	var b [8]byte
	b[0] = 1
	if _, err := DecodeRD(b); err == nil {
		t.Fatal("accepted unknown RD type")
	}
}

func TestVPNPrefixDistinguishesOverlap(t *testing.T) {
	// The core RFC 2547 property: same prefix + different RD = different key.
	p := MustParsePrefix("10.0.0.0/8")
	a := VPNPrefix{RD: RouteDistinguisher{100, 1}, Prefix: p}
	b := VPNPrefix{RD: RouteDistinguisher{100, 2}, Prefix: p}
	if a == b {
		t.Fatal("VPN prefixes with different RDs compare equal")
	}
	m := map[VPNPrefix]int{a: 1, b: 2}
	if len(m) != 2 {
		t.Fatal("map collapsed distinct VPN prefixes")
	}
}

func TestStrings(t *testing.T) {
	if s := MustParsePrefix("10.0.0.0/8").String(); s != "10.0.0.0/8" {
		t.Errorf("prefix String = %q", s)
	}
	rd := RouteDistinguisher{Admin: 65000, Assigned: 7}
	if rd.String() != "65000:7" {
		t.Errorf("RD String = %q", rd.String())
	}
	rt := RouteTarget{Admin: 65000, Assigned: 7}
	if rt.String() != "target:65000:7" {
		t.Errorf("RT String = %q", rt.String())
	}
	v := VPNPrefix{RD: rd, Prefix: MustParsePrefix("10.0.0.0/8")}
	if v.String() != "65000:7:10.0.0.0/8" {
		t.Errorf("VPNPrefix String = %q", v.String())
	}
}
