package addr

import (
	"testing"
	"testing/quick"
)

func TestTableBasic(t *testing.T) {
	tb := NewTable[string]()
	tb.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	tb.Insert(MustParsePrefix("10.1.0.0/16"), "ten-one")
	tb.Insert(MustParsePrefix("0.0.0.0/0"), "default")

	cases := []struct {
		ip   string
		want string
	}{
		{"10.1.2.3", "ten-one"},
		{"10.2.0.1", "ten"},
		{"11.0.0.1", "default"},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(MustParseIPv4(c.ip))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q/%v, want %q", c.ip, got, ok, c.want)
		}
	}
}

func TestTableNoMatch(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if _, ok := tb.Lookup(MustParseIPv4("11.0.0.1")); ok {
		t.Fatal("lookup matched with no covering prefix")
	}
}

func TestTableReplaceAndDelete(t *testing.T) {
	tb := NewTable[int]()
	p := MustParsePrefix("10.0.0.0/8")
	if !tb.Insert(p, 1) {
		t.Fatal("first insert should report added")
	}
	if tb.Insert(p, 2) {
		t.Fatal("second insert should report replaced")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	v, ok := tb.Exact(p)
	if !ok || v != 2 {
		t.Fatalf("Exact = %v/%v, want 2", v, ok)
	}
	if !tb.Delete(p) {
		t.Fatal("delete of present prefix returned false")
	}
	if tb.Delete(p) {
		t.Fatal("delete of absent prefix returned true")
	}
	if _, ok := tb.Lookup(MustParseIPv4("10.0.0.1")); ok {
		t.Fatal("deleted prefix still matches")
	}
}

func TestTableHostRoutes(t *testing.T) {
	tb := NewTable[int]()
	ip := MustParseIPv4("192.168.1.1")
	tb.Insert(HostPrefix(ip), 42)
	tb.Insert(MustParsePrefix("192.168.1.0/24"), 24)
	v, ok := tb.Lookup(ip)
	if !ok || v != 42 {
		t.Fatalf("host route not preferred: got %v", v)
	}
	v, ok = tb.Lookup(MustParseIPv4("192.168.1.2"))
	if !ok || v != 24 {
		t.Fatalf("covering /24 not matched: got %v", v)
	}
}

func TestTableLookupPrefix(t *testing.T) {
	tb := NewTable[string]()
	tb.Insert(MustParsePrefix("10.0.0.0/8"), "a")
	tb.Insert(MustParsePrefix("10.1.0.0/16"), "b")
	p, v, ok := tb.LookupPrefix(MustParseIPv4("10.1.2.3"))
	if !ok || v != "b" || p != MustParsePrefix("10.1.0.0/16") {
		t.Fatalf("LookupPrefix = %v %q %v", p, v, ok)
	}
	p, v, ok = tb.LookupPrefix(MustParseIPv4("10.9.0.1"))
	if !ok || v != "a" || p != MustParsePrefix("10.0.0.0/8") {
		t.Fatalf("LookupPrefix = %v %q %v", p, v, ok)
	}
}

func TestTableWalk(t *testing.T) {
	tb := NewTable[int]()
	ps := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24", "255.255.255.255/32"}
	for i, s := range ps {
		tb.Insert(MustParsePrefix(s), i)
	}
	seen := map[Prefix]int{}
	tb.Walk(func(p Prefix, v int) bool {
		seen[p] = v
		return true
	})
	if len(seen) != len(ps) {
		t.Fatalf("walk visited %d prefixes, want %d", len(seen), len(ps))
	}
	for i, s := range ps {
		if seen[MustParsePrefix(s)] != i {
			t.Errorf("walk value for %s = %d, want %d", s, seen[MustParsePrefix(s)], i)
		}
	}
	// Early stop.
	count := 0
	tb.Walk(func(Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("walk did not stop early: %d", count)
	}
}

// linearTable is a reference LPM implementation for the equivalence property.
type linearTable struct {
	prefixes []Prefix
	values   []int
}

func (l *linearTable) lookup(ip IPv4) (int, bool) {
	best := -1
	bestLen := -1
	for i, p := range l.prefixes {
		if p.Contains(ip) && int(p.Len) > bestLen {
			best, bestLen = i, int(p.Len)
		}
	}
	if best < 0 {
		return 0, false
	}
	return l.values[best], true
}

// Property: the radix trie agrees with a brute-force longest-prefix scan for
// random prefix sets and random lookups.
func TestTableMatchesLinearScan(t *testing.T) {
	f := func(seeds []uint32, probes []uint32) bool {
		tb := NewTable[int]()
		lin := &linearTable{}
		for i, s := range seeds {
			length := uint8(s % 33)
			p := NewPrefix(IPv4(s*2654435761), length)
			// Keep values consistent on duplicate prefixes.
			if _, exists := tb.Exact(p); exists {
				continue
			}
			tb.Insert(p, i)
			lin.prefixes = append(lin.prefixes, p)
			lin.values = append(lin.values, i)
		}
		for _, q := range probes {
			ip := IPv4(q)
			gv, gok := tb.Lookup(ip)
			wv, wok := lin.lookup(ip)
			if gok != wok || (gok && gv != wv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTablePrefixesCount(t *testing.T) {
	tb := NewTable[int]()
	for i := 0; i < 100; i++ {
		tb.Insert(NewPrefix(IPv4(uint32(i)<<24), 8), i)
	}
	if got := len(tb.Prefixes()); got != 100 {
		t.Fatalf("Prefixes returned %d entries, want 100", got)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tb := NewTable[int]()
	for i := 0; i < 10000; i++ {
		tb.Insert(NewPrefix(IPv4(uint32(i)*2654435761), uint8(8+i%25)), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(IPv4(uint32(i) * 2654435761))
	}
}
