// Package addr implements the addressing substrate for the MPLS VPN system:
// IPv4 addresses and prefixes, a longest-prefix-match radix trie, and the
// BGP/MPLS VPN identifiers from RFC 2547 — route distinguishers, route
// targets, and VPN-IPv4 addresses.
//
// Customer sites in different VPNs may use overlapping private address
// space (the paper's §4.2: "these addresses ... may in fact overlap with
// other address spaces"); the RD mechanism is what keeps them distinct
// inside the provider's single routing system.
package addr

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address held as a host-order uint32. A plain integer type
// keeps it comparable, usable as a map key, and allocation-free.
type IPv4 uint32

// MustParseIPv4 parses a dotted-quad string and panics on error. Intended
// for literals in tests and topology builders.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// ParseIPv4 parses a dotted-quad address like "10.1.2.3".
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("addr: %q is not a dotted quad", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("addr: bad octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(v)
	}
	return IPv4(ip), nil
}

// String formats the address as a dotted quad.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Octets returns the four bytes of the address in network order.
func (ip IPv4) Octets() [4]byte {
	return [4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// Prefix is an IPv4 CIDR prefix. Addr is stored with host bits zeroed.
type Prefix struct {
	Addr IPv4
	Len  uint8
}

// MustParsePrefix parses "a.b.c.d/len" and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses a CIDR string like "10.0.0.0/8".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("addr: %q has no '/'", s)
	}
	ip, err := ParseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[slash+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("addr: bad prefix length in %q", s)
	}
	return NewPrefix(ip, uint8(n)), nil
}

// NewPrefix builds a prefix, masking host bits off addr.
func NewPrefix(addr IPv4, length uint8) Prefix {
	if length > 32 {
		panic("addr: prefix length > 32")
	}
	return Prefix{Addr: addr & IPv4(mask(length)), Len: length}
}

// HostPrefix returns the /32 prefix covering exactly ip.
func HostPrefix(ip IPv4) Prefix { return Prefix{Addr: ip, Len: 32} }

func mask(length uint8) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

// Contains reports whether ip falls within the prefix.
func (p Prefix) Contains(ip IPv4) bool {
	return uint32(ip)&mask(p.Len) == uint32(p.Addr)
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Len <= q.Len {
		return p.Contains(q.Addr)
	}
	return q.Contains(p.Addr)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Len)
}

// Bit returns bit i (0 = most significant) of the prefix address.
func (p Prefix) Bit(i uint8) byte {
	return byte(uint32(p.Addr) >> (31 - i) & 1)
}

// RouteDistinguisher disambiguates customer routes with overlapping address
// space inside the provider's routing system (RFC 2547 §4.1). We model the
// type-0 form: a 2-byte administrator and a 4-byte assigned number.
type RouteDistinguisher struct {
	Admin    uint16
	Assigned uint32
}

// String formats the RD as "admin:assigned".
func (rd RouteDistinguisher) String() string {
	return fmt.Sprintf("%d:%d", rd.Admin, rd.Assigned)
}

// Encode packs the RD into its 8-byte wire representation.
func (rd RouteDistinguisher) Encode() [8]byte {
	var b [8]byte
	// Type 0: two bytes of zero, then admin, then assigned.
	b[2] = byte(rd.Admin >> 8)
	b[3] = byte(rd.Admin)
	b[4] = byte(rd.Assigned >> 24)
	b[5] = byte(rd.Assigned >> 16)
	b[6] = byte(rd.Assigned >> 8)
	b[7] = byte(rd.Assigned)
	return b
}

// DecodeRD reconstructs a route distinguisher from its wire form.
func DecodeRD(b [8]byte) (RouteDistinguisher, error) {
	if b[0] != 0 || b[1] != 0 {
		return RouteDistinguisher{}, fmt.Errorf("addr: unsupported RD type %d", uint16(b[0])<<8|uint16(b[1]))
	}
	return RouteDistinguisher{
		Admin:    uint16(b[2])<<8 | uint16(b[3]),
		Assigned: uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
	}, nil
}

// RouteTarget is the extended community controlling which VRFs import a
// route (RFC 2547 §4.3.1). Same structure as an RD but different semantics:
// RDs make routes unique, RTs define VPN membership.
type RouteTarget struct {
	Admin    uint16
	Assigned uint32
}

// String formats the RT as "target:admin:assigned".
func (rt RouteTarget) String() string {
	return fmt.Sprintf("target:%d:%d", rt.Admin, rt.Assigned)
}

// VPNPrefix is a VPN-IPv4 address: an RD concatenated with an IPv4 prefix.
// Two customers can both announce 10.0.0.0/8, and their VPN-IPv4 forms stay
// distinct because the RDs differ.
type VPNPrefix struct {
	RD     RouteDistinguisher
	Prefix Prefix
}

// String formats the VPN-IPv4 prefix as "rd:prefix".
func (v VPNPrefix) String() string {
	return fmt.Sprintf("%s:%s", v.RD, v.Prefix)
}

// Less is a structural total order over VPN-IPv4 prefixes (RD, then
// address, then length). Sorting hot paths use it instead of comparing
// String() forms, which allocates twice per comparison.
func (v VPNPrefix) Less(o VPNPrefix) bool {
	if v.RD.Admin != o.RD.Admin {
		return v.RD.Admin < o.RD.Admin
	}
	if v.RD.Assigned != o.RD.Assigned {
		return v.RD.Assigned < o.RD.Assigned
	}
	if v.Prefix.Addr != o.Prefix.Addr {
		return v.Prefix.Addr < o.Prefix.Addr
	}
	return v.Prefix.Len < o.Prefix.Len
}
