package packet

import (
	"strings"
	"testing"
	"testing/quick"

	"mplsvpn/internal/addr"
)

func TestIPv4MarshalRoundTrip(t *testing.T) {
	h := IPv4Header{
		DSCP:     DSCPEF,
		ECN:      1,
		TotalLen: 1500,
		ID:       0x1234,
		Flags:    2,
		FragOff:  0,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      addr.MustParseIPv4("10.1.2.3"),
		Dst:      addr.MustParseIPv4("192.168.9.8"),
	}
	b := h.Marshal()
	got, err := UnmarshalIPv4(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4Header{TTL: 64, Protocol: ProtoUDP, TotalLen: 100,
		Src: addr.MustParseIPv4("1.2.3.4"), Dst: addr.MustParseIPv4("5.6.7.8")}
	b := h.Marshal()
	b[8] = 63 // flip TTL without updating checksum
	if _, err := UnmarshalIPv4(b[:]); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4RejectsBadVersionAndLength(t *testing.T) {
	h := IPv4Header{TTL: 1}
	b := h.Marshal()
	b[0] = 6 << 4
	if _, err := UnmarshalIPv4(b[:]); err == nil {
		t.Fatal("accepted version 6")
	}
	if _, err := UnmarshalIPv4(b[:10]); err == nil {
		t.Fatal("accepted short buffer")
	}
}

// Property: every representable header round-trips.
func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(dscp, ecn, flags, ttl, proto uint8, totalLen, id, frag uint16, src, dst uint32) bool {
		h := IPv4Header{
			DSCP: DSCP(dscp & 0x3f), ECN: ecn & 0x3,
			TotalLen: totalLen, ID: id,
			Flags: flags & 0x7, FragOff: frag & 0x1fff,
			TTL: ttl, Protocol: proto,
			Src: addr.IPv4(src), Dst: addr.IPv4(dst),
		}
		b := h.Marshal()
		got, err := UnmarshalIPv4(b[:])
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelStackEntryRoundTrip(t *testing.T) {
	f := func(label uint32, exp, ttl uint8, s bool) bool {
		e := LabelStackEntry{Label: Label(label) & MaxLabel, EXP: exp & 0x7, S: s, TTL: ttl}
		b := e.Marshal()
		got, err := UnmarshalLabelStackEntry(b[:])
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelStackMarshalRoundTrip(t *testing.T) {
	s := StackOf(
		LabelStackEntry{Label: 1000, EXP: 5, TTL: 255},
		LabelStackEntry{Label: 2000, EXP: 3, TTL: 254},
		LabelStackEntry{Label: 3000, EXP: 0, TTL: 64},
	)
	b := s.Marshal()
	if len(b) != 12 {
		t.Fatalf("marshalled length = %d, want 12", len(b))
	}
	got, n, err := UnmarshalLabelStack(b)
	if err != nil || n != 12 {
		t.Fatalf("unmarshal: n=%d err=%v", n, err)
	}
	if got.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", got.Depth())
	}
	for i := 0; i < s.Depth(); i++ {
		wantS := i == 2
		w, g := s.At(i), got.At(i)
		if g.Label != w.Label || g.EXP != w.EXP || g.TTL != w.TTL || g.S != wantS {
			t.Fatalf("entry %d = %+v", i, g)
		}
	}
}

func TestLabelStackMissingBottom(t *testing.T) {
	e := LabelStackEntry{Label: 5, S: false}
	b := e.Marshal()
	if _, _, err := UnmarshalLabelStack(b[:]); err == nil {
		t.Fatal("accepted stack without bottom-of-stack bit")
	}
}

func TestLabelStackPushPop(t *testing.T) {
	var s LabelStack
	s.Push(LabelStackEntry{Label: 100})
	s.Push(LabelStackEntry{Label: 200})
	if s.Top().Label != 200 {
		t.Fatalf("top = %d, want 200", s.Top().Label)
	}
	e := s.Pop()
	if e.Label != 200 || s.Depth() != 1 || s.Top().Label != 100 {
		t.Fatalf("pop broke stack: %v %v", e, s)
	}
}

func TestLabelStackPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s LabelStack
	s.Pop()
}

func TestPacketSerializedLen(t *testing.T) {
	p := &Packet{Payload: 100}
	if p.SerializedLen() != IPv4HeaderLen+L4HeaderLen+100 {
		t.Fatalf("plain IP len = %d", p.SerializedLen())
	}
	p.MPLS = StackOf(LabelStackEntry{Label: 16}, LabelStackEntry{Label: 17})
	if p.SerializedLen() != IPv4HeaderLen+8+L4HeaderLen+100 {
		t.Fatalf("MPLS len = %d", p.SerializedLen())
	}
	p.MPLS = LabelStack{}
	p.ESP = &ESPInfo{AuthBytes: 16, PadBytes: 4}
	want := IPv4HeaderLen + L4HeaderLen + 100 + 8 + 16 + IPv4HeaderLen + 4 + 16
	if p.SerializedLen() != want {
		t.Fatalf("ESP len = %d, want %d", p.SerializedLen(), want)
	}
}

func TestPacketCloneIndependence(t *testing.T) {
	p := &Packet{MPLS: StackOf(LabelStackEntry{Label: 1}), ESP: &ESPInfo{SPI: 9}}
	q := p.Clone()
	q.MPLS.SetTop(LabelStackEntry{Label: 2})
	q.ESP.SPI = 10
	if p.MPLS.Top().Label != 1 || p.ESP.SPI != 9 {
		t.Fatal("clone aliases original")
	}
}

func TestFlowKey(t *testing.T) {
	p := &Packet{
		IP: IPv4Header{Src: addr.MustParseIPv4("1.1.1.1"), Dst: addr.MustParseIPv4("2.2.2.2"), Protocol: ProtoUDP},
		L4: L4Header{SrcPort: 1000, DstPort: 2000},
	}
	k := p.FlowKey()
	if k.Src != p.IP.Src || k.DstPort != 2000 || k.Protocol != ProtoUDP {
		t.Fatalf("flow key = %+v", k)
	}
}

func TestDSCPStrings(t *testing.T) {
	if DSCPEF.String() != "EF" || DSCPBestEffort.String() != "BE" || DSCPAF41.String() != "AF41" {
		t.Fatal("unexpected DSCP names")
	}
	if DSCP(63).String() != "DSCP(63)" {
		t.Fatalf("unknown DSCP formatting: %s", DSCP(63))
	}
}

func TestStringFormats(t *testing.T) {
	for d := DSCP(0); d < 64; d++ {
		if DSCP(d).String() == "" {
			t.Fatalf("empty name for DSCP %d", d)
		}
	}
	s := StackOf(LabelStackEntry{Label: 5, EXP: 3, TTL: 10}, LabelStackEntry{Label: 6, EXP: 1, TTL: 9})
	if got := s.String(); !strings.Contains(got, "5(exp=3,ttl=10)") || !strings.Contains(got, "6(") {
		t.Fatalf("stack String = %q", got)
	}
	p := &Packet{
		IP: IPv4Header{DSCP: DSCPEF, TTL: 7,
			Src: addr.MustParseIPv4("1.1.1.1"), Dst: addr.MustParseIPv4("2.2.2.2")},
		MPLS:    StackOf(LabelStackEntry{Label: 5}),
		ESP:     &ESPInfo{SPI: 9},
		Payload: 10,
	}
	got := p.String()
	for _, want := range []string{"1.1.1.1", "2.2.2.2", "EF", "mpls=", "esp(spi=9)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("packet String %q missing %q", got, want)
		}
	}
	k := p.FlowKey()
	if !strings.Contains(k.String(), "1.1.1.1") {
		t.Fatalf("flow key String = %q", k.String())
	}
}

func TestFlowHashProperties(t *testing.T) {
	base := &Packet{
		IP: IPv4Header{Src: 1, Dst: 2, Protocol: ProtoUDP},
		L4: L4Header{SrcPort: 1000, DstPort: 2000},
	}
	h := base.FlowHash()
	if h != base.FlowHash() {
		t.Fatal("hash not deterministic")
	}
	other := base.Clone()
	other.L4.SrcPort = 1001
	other.InvalidateCaches() // tuple rewrite must drop the memoized hash
	if other.FlowHash() == h {
		t.Fatal("port change did not change hash")
	}
	// Spread: 1024 flows over 16 buckets, no bucket wildly empty.
	buckets := make([]int, 16)
	for i := 0; i < 1024; i++ {
		p := base.Clone()
		p.L4.SrcPort = uint16(i)
		p.InvalidateCaches()
		buckets[p.FlowHash()%16]++
	}
	for i, c := range buckets {
		if c == 0 {
			t.Fatalf("bucket %d empty: %v", i, buckets)
		}
	}
}

func TestVerifyChecksumShortBuffer(t *testing.T) {
	if VerifyChecksum([]byte{1, 2, 3}) {
		t.Fatal("short buffer verified")
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers pad the final byte; just ensure stability.
	b := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 0, 13}
	if Checksum(b) != Checksum(b) {
		t.Fatal("checksum unstable")
	}
}

func TestUnmarshalLabelStackEntryShort(t *testing.T) {
	if _, err := UnmarshalLabelStackEntry([]byte{1, 2}); err == nil {
		t.Fatal("short entry accepted")
	}
}

func TestTopPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s LabelStack
	s.Top()
}

func TestCloneNilStack(t *testing.T) {
	p := &Packet{}
	q := p.Clone()
	if q.MPLS.Depth() != 0 || q.ESP != nil {
		t.Fatal("clone invented state")
	}
}
