package packet

import "testing"

// The label stack is inline in the packet: every MPLS operation must be
// allocation-free. This is the innermost gate of the zero-allocation data
// plane — if these fail, everything downstream fails too.
func TestLabelStackOpsZeroAlloc(t *testing.T) {
	var s LabelStack
	allocs := testing.AllocsPerRun(100, func() {
		s.Push(LabelStackEntry{Label: 500, EXP: 5, TTL: 64})   // VPN
		s.Push(LabelStackEntry{Label: 100, EXP: 5, TTL: 64})   // transport
		s.SetTop(LabelStackEntry{Label: 101, EXP: 5, TTL: 63}) // swap
		s.SetTopTTL(62)
		_ = s.Top()
		_ = s.At(1)
		_ = s.Pop()
		_ = s.Pop()
	})
	if allocs != 0 {
		t.Fatalf("label stack push/pop/swap allocates %v per run, want 0", allocs)
	}
}

// DropReason must convert to the error interface without allocating: values
// below 256 hit the runtime's small-integer interning.
func TestDropReasonErrorZeroAlloc(t *testing.T) {
	var sink error
	allocs := testing.AllocsPerRun(100, func() {
		sink = DropTTLExpired
	})
	if allocs != 0 {
		t.Fatalf("DropReason -> error conversion allocates %v per run, want 0", allocs)
	}
	_ = sink
}

// Cached hashes and wire lengths must not allocate either.
func TestPacketCachesZeroAlloc(t *testing.T) {
	p := &Packet{Payload: 200}
	p.MPLS.Push(LabelStackEntry{Label: 100, TTL: 64})
	allocs := testing.AllocsPerRun(100, func() {
		_ = p.FlowHash()
		_ = p.Wire()
		_ = p.RefreshWire()
	})
	if allocs != 0 {
		t.Fatalf("packet cache reads allocate %v per run, want 0", allocs)
	}
}
