// Package packet defines the wire formats moved through the simulator:
// IPv4 headers (with real marshal/unmarshal and checksums), MPLS label-stack
// entries, a minimal UDP-style transport header, and the ESP encapsulation
// used by the IPSec baseline.
//
// Packets are carried between simulated routers as structured values for
// speed, but every header type round-trips through its real byte layout and
// the data-plane tests exercise that encoding, so the formats are honest.
package packet

import (
	"encoding/binary"
	"fmt"

	"mplsvpn/internal/addr"
)

// Protocol numbers used by the simulator (real IANA values).
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoESP  uint8 = 50
)

// IPv4HeaderLen is the length of a header without options. The simulator
// never generates options.
const IPv4HeaderLen = 20

// DSCP is the DiffServ codepoint carried in the upper six bits of the IPv4
// ToS byte. The named values cover the per-hop behaviours the experiments
// use: EF for voice, AF classes for assured business traffic, CS0/BE for
// best effort.
type DSCP uint8

// Standard DiffServ codepoints (RFC 2474, RFC 2597, RFC 3246).
const (
	DSCPBestEffort DSCP = 0  // CS0 / default PHB
	DSCPCS1        DSCP = 8  // scavenger
	DSCPAF11       DSCP = 10 // assured forwarding class 1, low drop
	DSCPAF12       DSCP = 12
	DSCPAF13       DSCP = 14
	DSCPAF21       DSCP = 18
	DSCPAF22       DSCP = 20
	DSCPAF23       DSCP = 22
	DSCPAF31       DSCP = 26
	DSCPAF32       DSCP = 28
	DSCPAF33       DSCP = 30
	DSCPAF41       DSCP = 34
	DSCPAF42       DSCP = 36
	DSCPAF43       DSCP = 38
	DSCPCS6        DSCP = 48 // network control
	DSCPEF         DSCP = 46 // expedited forwarding (voice)
)

// String names the well-known codepoints.
func (d DSCP) String() string {
	switch d {
	case DSCPBestEffort:
		return "BE"
	case DSCPCS1:
		return "CS1"
	case DSCPAF11:
		return "AF11"
	case DSCPAF12:
		return "AF12"
	case DSCPAF13:
		return "AF13"
	case DSCPAF21:
		return "AF21"
	case DSCPAF22:
		return "AF22"
	case DSCPAF23:
		return "AF23"
	case DSCPAF31:
		return "AF31"
	case DSCPAF32:
		return "AF32"
	case DSCPAF33:
		return "AF33"
	case DSCPAF41:
		return "AF41"
	case DSCPAF42:
		return "AF42"
	case DSCPAF43:
		return "AF43"
	case DSCPEF:
		return "EF"
	case DSCPCS6:
		return "CS6"
	}
	return fmt.Sprintf("DSCP(%d)", uint8(d))
}

// IPv4Header models the fixed part of an IPv4 header.
type IPv4Header struct {
	DSCP     DSCP
	ECN      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      addr.IPv4
	Dst      addr.IPv4
}

// Marshal encodes the header into its 20-byte wire form, computing the
// checksum.
func (h *IPv4Header) Marshal() [IPv4HeaderLen]byte {
	var b [IPv4HeaderLen]byte
	b[0] = 4<<4 | 5 // version 4, IHL 5 words
	b[1] = uint8(h.DSCP)<<2 | h.ECN&0x3
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags&0x7)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	// checksum at [10:12] computed over the header with checksum zero
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(h.Dst))
	binary.BigEndian.PutUint16(b[10:12], Checksum(b[:]))
	return b
}

// UnmarshalIPv4 decodes a 20-byte header and verifies the checksum.
func UnmarshalIPv4(b []byte) (IPv4Header, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, fmt.Errorf("packet: IPv4 header too short (%d bytes)", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return h, fmt.Errorf("packet: IP version %d, want 4", v)
	}
	if ihl := b[0] & 0xf; ihl != 5 {
		return h, fmt.Errorf("packet: unsupported IHL %d", ihl)
	}
	if !VerifyChecksum(b[:IPv4HeaderLen]) {
		return h, fmt.Errorf("packet: bad IPv4 header checksum")
	}
	h.DSCP = DSCP(b[1] >> 2)
	h.ECN = b[1] & 0x3
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Src = addr.IPv4(binary.BigEndian.Uint32(b[12:16]))
	h.Dst = addr.IPv4(binary.BigEndian.Uint32(b[16:20]))
	return h, nil
}

// Checksum computes the RFC 1071 internet checksum of b with any existing
// checksum field already zeroed (for an IPv4 header, bytes 10-11 are treated
// as zero regardless).
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether the checksum stored at bytes 10-11 matches
// the header contents.
func VerifyChecksum(b []byte) bool {
	if len(b) < 12 {
		return false
	}
	return binary.BigEndian.Uint16(b[10:12]) == Checksum(b)
}
