package packet

import "testing"

// FuzzUnmarshalIPv4 hardens the header parser against arbitrary bytes:
// it must never panic, and anything it accepts must re-marshal to the
// same bytes (checksum included).
func FuzzUnmarshalIPv4(f *testing.F) {
	h := IPv4Header{TTL: 64, Protocol: ProtoUDP, TotalLen: 120, Src: 1, Dst: 2}
	b := h.Marshal()
	f.Add(b[:])
	f.Add([]byte{})
	f.Add([]byte{0x45, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalIPv4(data)
		if err != nil {
			return
		}
		round := got.Marshal()
		for i := range round {
			if round[i] != data[i] {
				t.Fatalf("accepted header does not round-trip at byte %d", i)
			}
		}
	})
}

// FuzzUnmarshalLabelStack checks the stack parser never panics and that
// accepted stacks round-trip.
func FuzzUnmarshalLabelStack(f *testing.F) {
	s := StackOf(LabelStackEntry{Label: 100, EXP: 5, TTL: 64}, LabelStackEntry{Label: 200, TTL: 63})
	f.Add(s.Marshal())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		stack, n, err := UnmarshalLabelStack(data)
		if err != nil {
			return
		}
		round := stack.Marshal()
		if len(round) != n {
			t.Fatalf("consumed %d bytes but re-marshals to %d", n, len(round))
		}
		for i := range round {
			if round[i] != data[i] {
				t.Fatalf("stack does not round-trip at byte %d", i)
			}
		}
	})
}
