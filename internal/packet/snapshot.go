package packet

import (
	"mplsvpn/internal/addr"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/snapshot"
)

// Save serializes an in-flight packet: headers, label stack, payload size,
// and timing metadata. The memoized flow hash and wire length are pure
// functions of the headers, so they are recomputed lazily after Load rather
// than stored; freelist ownership is the allocating pool's business.
func Save(w *snapshot.Writer, p *Packet) {
	w.U64(uint64(p.IP.DSCP))
	w.U64(uint64(p.IP.ECN))
	w.U64(uint64(p.IP.TotalLen))
	w.U64(uint64(p.IP.ID))
	w.U64(uint64(p.IP.Flags))
	w.U64(uint64(p.IP.FragOff))
	w.U64(uint64(p.IP.TTL))
	w.U64(uint64(p.IP.Protocol))
	w.U64(uint64(p.IP.Src))
	w.U64(uint64(p.IP.Dst))

	d := p.MPLS.Depth()
	w.U64(uint64(d))
	for i := 0; i < d; i++ {
		e := p.MPLS.e[i] // bottom-first, the storage order
		w.U64(uint64(e.Label))
		w.U64(uint64(e.EXP))
		w.Bool(e.S)
		w.U64(uint64(e.TTL))
	}

	w.U64(uint64(p.L4.SrcPort))
	w.U64(uint64(p.L4.DstPort))
	w.I64(int64(p.Payload))

	w.Bool(p.ESP != nil)
	if p.ESP != nil {
		w.U64(uint64(p.ESP.SPI))
		w.U64(p.ESP.SeqNum)
		w.U64(uint64(p.ESP.InnerDSCP))
		w.U64(uint64(p.ESP.InnerSrc))
		w.U64(uint64(p.ESP.InnerDst))
		w.Bool(p.ESP.InnerHidden)
		w.I64(int64(p.ESP.AuthBytes))
		w.I64(int64(p.ESP.PadBytes))
	}

	w.U64(p.Seq)
	w.I64(int64(p.SentAt))
	w.I64(int64(p.EnqueuedAt))
	w.I64(int64(p.Hops))
	w.Str(p.OriginVPN)
}

// Load fills p (typically fresh from a pool) with a packet written by Save.
func Load(r *snapshot.Reader, p *Packet) error {
	pooled := p.pooled
	*p = Packet{pooled: pooled}

	p.IP.DSCP = DSCP(r.U64())
	p.IP.ECN = uint8(r.U64())
	p.IP.TotalLen = uint16(r.U64())
	p.IP.ID = uint16(r.U64())
	p.IP.Flags = uint8(r.U64())
	p.IP.FragOff = uint16(r.U64())
	p.IP.TTL = uint8(r.U64())
	p.IP.Protocol = uint8(r.U64())
	p.IP.Src = addr.IPv4(uint32(r.U64()))
	p.IP.Dst = addr.IPv4(uint32(r.U64()))

	d := r.Count(4)
	if d > MaxLabelDepth {
		return snapshot.ErrCorrupt
	}
	for i := 0; i < d; i++ {
		e := LabelStackEntry{
			Label: Label(r.U64()),
			EXP:   uint8(r.U64()),
			S:     r.Bool(),
			TTL:   uint8(r.U64()),
		}
		if r.Err() != nil {
			return r.Err()
		}
		p.MPLS.Push(e)
	}

	p.L4.SrcPort = uint16(r.U64())
	p.L4.DstPort = uint16(r.U64())
	p.Payload = int(r.I64())

	if r.Bool() {
		p.ESP = &ESPInfo{
			SPI:         uint32(r.U64()),
			SeqNum:      r.U64(),
			InnerDSCP:   DSCP(r.U64()),
			InnerSrc:    addr.IPv4(uint32(r.U64())),
			InnerDst:    addr.IPv4(uint32(r.U64())),
			InnerHidden: r.Bool(),
			AuthBytes:   int(r.I64()),
			PadBytes:    int(r.I64()),
		}
	}

	p.Seq = r.U64()
	p.SentAt = sim.Time(r.I64())
	p.EnqueuedAt = sim.Time(r.I64())
	p.Hops = int(r.I64())
	p.OriginVPN = r.Str()
	return r.Err()
}
