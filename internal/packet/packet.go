package packet

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/sim"
)

// FlowKey identifies a transport flow (the classic 5-tuple).
type FlowKey struct {
	Src, Dst         addr.IPv4
	SrcPort, DstPort uint16
	Protocol         uint8
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Protocol)
}

// Packet is the unit moved through the data plane. The IP header and MPLS
// stack are structured for speed; SerializedLen reports the true on-wire
// size (headers + payload) used for transmission timing, so queueing and
// bandwidth behaviour reflect the real encodings.
type Packet struct {
	IP         IPv4Header
	MPLS       LabelStack
	L4         L4Header
	Payload    int // payload bytes (simulated, not materialized)
	ESP        *ESPInfo
	Seq        uint64   // per-flow sequence number, assigned by generators
	SentAt     sim.Time // timestamp at first transmission, for latency stats
	EnqueuedAt sim.Time // set by queues, for per-hop delay accounting
	Hops       int      // routers traversed, for path-length assertions

	// VPN bookkeeping (simulator metadata, not wire data): the VPN the
	// packet was injected into, used only to *check* isolation — the data
	// plane itself must never consult it for forwarding.
	OriginVPN string

	// Hot-path caches. fh memoizes the 5-tuple hash (flows never change
	// their tuple in flight except at an IPSec gateway, which invalidates);
	// wire memoizes SerializedLen between the end of a router's pipeline
	// and the far end of the link, where the headers cannot change.
	fh     uint32
	fhSet  bool
	wire   int32
	pooled bool // owned by a netsim freelist; recycled at deliver/drop
}

// L4Header is a minimal UDP-style transport header (8 bytes on the wire).
type L4Header struct {
	SrcPort, DstPort uint16
}

// L4HeaderLen is the wire size of the transport header.
const L4HeaderLen = 8

// ESPInfo models an ESP encapsulation in tunnel mode. When a packet carries
// ESP, the "inner" IP header (the customer packet) is encrypted: simulated
// here by the InnerHidden flag — once set, forwarding elements must not read
// Inner* fields. This models the paper's §3 observation that encryption
// erases the information QoS control needs.
type ESPInfo struct {
	SPI         uint32
	SeqNum      uint64
	InnerDSCP   DSCP // the customer's marking, inaccessible once encrypted
	InnerSrc    addr.IPv4
	InnerDst    addr.IPv4
	InnerHidden bool // true after "encryption"
	AuthBytes   int  // ICV length
	PadBytes    int  // block-cipher padding
}

// FlowHash returns a stable FNV-1a hash of the packet's 5-tuple, used to
// pin a flow onto one path of an ECMP set (so a flow never reorders across
// parallel paths). The hash is computed once per packet and cached; code
// that rewrites the 5-tuple mid-flight (IPSec encap/decap) must call
// InvalidateCaches.
func (p *Packet) FlowHash() uint32 {
	if !p.fhSet {
		p.fh = flowHash(p)
		p.fhSet = true
	}
	return p.fh
}

func flowHash(p *Packet) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint32(p.IP.Src))
	mix(uint32(p.IP.Dst))
	mix(uint32(p.L4.SrcPort)<<16 | uint32(p.L4.DstPort))
	mix(uint32(p.IP.Protocol))
	return h
}

// InvalidateCaches discards the memoized flow hash and wire length after a
// header rewrite that changes them (tunnel encap/decap).
func (p *Packet) InvalidateCaches() {
	p.fhSet = false
	p.wire = 0
}

// FlowKey extracts the packet's transport 5-tuple.
func (p *Packet) FlowKey() FlowKey {
	return FlowKey{
		Src: p.IP.Src, Dst: p.IP.Dst,
		SrcPort: p.L4.SrcPort, DstPort: p.L4.DstPort,
		Protocol: p.IP.Protocol,
	}
}

// SerializedLen returns the packet's on-wire length in bytes: IP header,
// MPLS shim headers, ESP overhead if present, transport header, payload.
// It always computes from the headers; the hot path uses Wire, which
// memoizes between header rewrites.
func (p *Packet) SerializedLen() int {
	n := IPv4HeaderLen + p.MPLS.Depth()*LabelStackEntryLen + L4HeaderLen + p.Payload
	if p.ESP != nil {
		// Outer IP header already counted; add ESP header (SPI+seq = 8),
		// IV (16), inner IP header, padding, and ICV.
		n += 8 + 16 + IPv4HeaderLen + p.ESP.PadBytes + p.ESP.AuthBytes
	}
	return n
}

// Wire returns the cached on-wire length, computing it on first use.
// Headers only change inside a router's pipeline; netsim refreshes the
// cache (RefreshWire) when the packet leaves the pipeline, so queues,
// schedulers, and shapers all read one consistent precomputed size.
func (p *Packet) Wire() int {
	if p.wire == 0 {
		p.wire = int32(p.SerializedLen())
	}
	return int(p.wire)
}

// RefreshWire recomputes and caches the on-wire length. Called once per hop
// after label operations settle.
func (p *Packet) RefreshWire() int {
	p.wire = int32(p.SerializedLen())
	return int(p.wire)
}

// Reset returns the packet to its zero state, keeping only freelist
// ownership. Pools call it on recycle so a reused packet is
// indistinguishable from a freshly allocated one — that equivalence is
// what keeps pooling invisible to the deterministic engine.
func (p *Packet) Reset() {
	pooled := p.pooled
	*p = Packet{pooled: pooled}
}

// SetPooled marks the packet as owned by a freelist. Only netsim pools use
// this; packets constructed by tests or probes stay unpooled and are left
// for the garbage collector.
func (p *Packet) SetPooled() { p.pooled = true }

// Pooled reports whether the packet belongs to a freelist.
func (p *Packet) Pooled() bool { return p.pooled }

// Clone returns a deep copy (label stack and ESP info included). Multicast
// or ECMP replication must not alias the stack. Clones are never
// pool-owned: the pool recycles only the original at delivery.
func (p *Packet) Clone() *Packet {
	q := *p
	q.pooled = false
	if p.ESP != nil {
		e := *p.ESP
		q.ESP = &e
	}
	return &q
}

func (p *Packet) String() string {
	s := fmt.Sprintf("%s->%s dscp=%s len=%d ttl=%d", p.IP.Src, p.IP.Dst, p.IP.DSCP, p.SerializedLen(), p.IP.TTL)
	if p.MPLS.Depth() > 0 {
		s += " mpls=" + p.MPLS.String()
	}
	if p.ESP != nil {
		s += fmt.Sprintf(" esp(spi=%d)", p.ESP.SPI)
	}
	return s
}
