package packet

import (
	"encoding/binary"
	"fmt"
)

// Label is a 20-bit MPLS label value.
type Label uint32

// Reserved label values (RFC 3032).
const (
	LabelIPv4ExplicitNull Label = 0
	LabelRouterAlert      Label = 1
	LabelImplicitNull     Label = 3 // signalled, never on the wire: requests PHP
	MinDynamicLabel       Label = 16
	MaxLabel              Label = 1<<20 - 1
)

// LabelStackEntryLen is the wire size of one MPLS shim header.
const LabelStackEntryLen = 4

// LabelStackEntry is one 32-bit MPLS shim header: 20-bit label, 3-bit EXP
// (traffic class), bottom-of-stack bit, and TTL. The EXP field is the QoS
// carrier the paper builds on: "The network edge will then map the
// CPE-specified DiffServ/ToS service level specification into the QoS field
// of the MPLS header."
type LabelStackEntry struct {
	Label Label
	EXP   uint8 // 3 bits
	S     bool  // bottom of stack
	TTL   uint8
}

// Marshal encodes the entry into its 4-byte wire form.
func (e LabelStackEntry) Marshal() [LabelStackEntryLen]byte {
	var b [LabelStackEntryLen]byte
	v := uint32(e.Label&MaxLabel)<<12 | uint32(e.EXP&0x7)<<9 | uint32(e.TTL)
	if e.S {
		v |= 1 << 8
	}
	binary.BigEndian.PutUint32(b[:], v)
	return b
}

// UnmarshalLabelStackEntry decodes one shim header.
func UnmarshalLabelStackEntry(b []byte) (LabelStackEntry, error) {
	if len(b) < LabelStackEntryLen {
		return LabelStackEntry{}, fmt.Errorf("packet: label stack entry too short (%d bytes)", len(b))
	}
	v := binary.BigEndian.Uint32(b[:4])
	return LabelStackEntry{
		Label: Label(v >> 12),
		EXP:   uint8(v >> 9 & 0x7),
		S:     v>>8&1 == 1,
		TTL:   uint8(v),
	}, nil
}

// LabelStack is an MPLS label stack; index 0 is the top (outermost) entry.
type LabelStack []LabelStackEntry

// Marshal encodes the whole stack, fixing up the S bit so only the last
// entry has it set.
func (s LabelStack) Marshal() []byte {
	out := make([]byte, 0, len(s)*LabelStackEntryLen)
	for i, e := range s {
		e.S = i == len(s)-1
		b := e.Marshal()
		out = append(out, b[:]...)
	}
	return out
}

// UnmarshalLabelStack decodes entries until the bottom-of-stack bit. It
// returns the stack and the number of bytes consumed.
func UnmarshalLabelStack(b []byte) (LabelStack, int, error) {
	var s LabelStack
	off := 0
	for {
		e, err := UnmarshalLabelStackEntry(b[off:])
		if err != nil {
			return nil, 0, err
		}
		s = append(s, e)
		off += LabelStackEntryLen
		if e.S {
			return s, off, nil
		}
		if off >= len(b) {
			return nil, 0, fmt.Errorf("packet: label stack ran past end of buffer without S bit")
		}
	}
}

// Push adds an entry on top of the stack.
func (s LabelStack) Push(e LabelStackEntry) LabelStack {
	return append(LabelStack{e}, s...)
}

// Pop removes the top entry. It panics on an empty stack; callers check
// Depth first.
func (s LabelStack) Pop() (LabelStackEntry, LabelStack) {
	if len(s) == 0 {
		panic("packet: pop of empty label stack")
	}
	return s[0], s[1:]
}

// Top returns the outermost entry without removing it.
func (s LabelStack) Top() LabelStackEntry {
	if len(s) == 0 {
		panic("packet: top of empty label stack")
	}
	return s[0]
}

// Depth returns the number of entries.
func (s LabelStack) Depth() int { return len(s) }

// Clone returns an independent copy of the stack.
func (s LabelStack) Clone() LabelStack {
	if s == nil {
		return nil
	}
	out := make(LabelStack, len(s))
	copy(out, s)
	return out
}

func (s LabelStack) String() string {
	out := "["
	for i, e := range s {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d(exp=%d,ttl=%d)", e.Label, e.EXP, e.TTL)
	}
	return out + "]"
}
