package packet

import (
	"encoding/binary"
	"fmt"
)

// Label is a 20-bit MPLS label value.
type Label uint32

// Reserved label values (RFC 3032).
const (
	LabelIPv4ExplicitNull Label = 0
	LabelRouterAlert      Label = 1
	LabelImplicitNull     Label = 3 // signalled, never on the wire: requests PHP
	MinDynamicLabel       Label = 16
	MaxLabel              Label = 1<<20 - 1
)

// LabelStackEntryLen is the wire size of one MPLS shim header.
const LabelStackEntryLen = 4

// MaxLabelDepth is the inline capacity of a LabelStack. Deployments here
// stack at most four shims (VPN + transport + FRR bypass + inter-AS), so
// eight leaves headroom; exceeding it is a provisioning error, not a data
// plane condition.
const MaxLabelDepth = 8

// LabelStackEntry is one 32-bit MPLS shim header: 20-bit label, 3-bit EXP
// (traffic class), bottom-of-stack bit, and TTL. The EXP field is the QoS
// carrier the paper builds on: "The network edge will then map the
// CPE-specified DiffServ/ToS service level specification into the QoS field
// of the MPLS header."
type LabelStackEntry struct {
	Label Label
	EXP   uint8 // 3 bits
	S     bool  // bottom of stack
	TTL   uint8
}

// Marshal encodes the entry into its 4-byte wire form.
func (e LabelStackEntry) Marshal() [LabelStackEntryLen]byte {
	var b [LabelStackEntryLen]byte
	v := uint32(e.Label&MaxLabel)<<12 | uint32(e.EXP&0x7)<<9 | uint32(e.TTL)
	if e.S {
		v |= 1 << 8
	}
	binary.BigEndian.PutUint32(b[:], v)
	return b
}

// UnmarshalLabelStackEntry decodes one shim header.
func UnmarshalLabelStackEntry(b []byte) (LabelStackEntry, error) {
	if len(b) < LabelStackEntryLen {
		return LabelStackEntry{}, fmt.Errorf("packet: label stack entry too short (%d bytes)", len(b))
	}
	v := binary.BigEndian.Uint32(b[:4])
	return LabelStackEntry{
		Label: Label(v >> 12),
		EXP:   uint8(v >> 9 & 0x7),
		S:     v>>8&1 == 1,
		TTL:   uint8(v),
	}, nil
}

// LabelStack is an MPLS label stack held inline in the packet: a
// fixed-capacity array plus a depth, so push/pop/swap never allocate and
// never shift entries. Entries are stored bottom-first — e[0] is the bottom
// of stack, e[depth-1] the top (outermost) shim — which makes push and pop
// single-slot writes at the end. The zero value is an empty stack.
type LabelStack struct {
	e     [MaxLabelDepth]LabelStackEntry
	depth int32
}

// StackOf builds a stack from entries listed outermost (top) first, the
// order the shims appear on the wire.
func StackOf(entries ...LabelStackEntry) LabelStack {
	if len(entries) > MaxLabelDepth {
		panic(fmt.Sprintf("packet: label stack of %d entries exceeds MaxLabelDepth %d", len(entries), MaxLabelDepth))
	}
	var s LabelStack
	for i := len(entries) - 1; i >= 0; i-- {
		s.Push(entries[i])
	}
	return s
}

// Depth returns the number of entries.
func (s *LabelStack) Depth() int { return int(s.depth) }

// Push adds an entry on top of the stack, in place.
func (s *LabelStack) Push(e LabelStackEntry) {
	if s.depth >= MaxLabelDepth {
		panic("packet: label stack overflow")
	}
	s.e[s.depth] = e
	s.depth++
}

// Pop removes and returns the top entry, in place. It panics on an empty
// stack; callers check Depth first.
func (s *LabelStack) Pop() LabelStackEntry {
	if s.depth == 0 {
		panic("packet: pop of empty label stack")
	}
	s.depth--
	return s.e[s.depth]
}

// Top returns the outermost entry without removing it.
func (s *LabelStack) Top() LabelStackEntry {
	if s.depth == 0 {
		panic("packet: top of empty label stack")
	}
	return s.e[s.depth-1]
}

// SetTop replaces the outermost entry (the swap operation).
func (s *LabelStack) SetTop(e LabelStackEntry) {
	if s.depth == 0 {
		panic("packet: set-top of empty label stack")
	}
	s.e[s.depth-1] = e
}

// SetTopTTL rewrites only the outermost entry's TTL.
func (s *LabelStack) SetTopTTL(ttl uint8) {
	if s.depth == 0 {
		panic("packet: set-top of empty label stack")
	}
	s.e[s.depth-1].TTL = ttl
}

// At returns the i-th entry counted from the top: At(0) is the outermost
// shim, At(Depth()-1) the bottom of stack — the order the wire encodes.
func (s *LabelStack) At(i int) LabelStackEntry {
	if i < 0 || i >= int(s.depth) {
		panic(fmt.Sprintf("packet: label stack index %d out of range (depth %d)", i, s.depth))
	}
	return s.e[int(s.depth)-1-i]
}

// Clear empties the stack.
func (s *LabelStack) Clear() { s.depth = 0 }

// Clone returns an independent copy of the stack. With the inline
// representation this is a plain value copy; it survives for callers that
// snapshot stacks (traces).
func (s *LabelStack) Clone() LabelStack { return *s }

// Marshal encodes the whole stack outermost-first, fixing up the S bit so
// only the bottom entry has it set.
func (s *LabelStack) Marshal() []byte {
	out := make([]byte, 0, int(s.depth)*LabelStackEntryLen)
	for i := int(s.depth) - 1; i >= 0; i-- {
		e := s.e[i]
		e.S = i == 0
		b := e.Marshal()
		out = append(out, b[:]...)
	}
	return out
}

// UnmarshalLabelStack decodes entries until the bottom-of-stack bit. It
// returns the stack and the number of bytes consumed. Stacks deeper than
// MaxLabelDepth are rejected.
func UnmarshalLabelStack(b []byte) (LabelStack, int, error) {
	var tmp [MaxLabelDepth]LabelStackEntry
	n := 0
	off := 0
	for {
		e, err := UnmarshalLabelStackEntry(b[off:])
		if err != nil {
			return LabelStack{}, 0, err
		}
		if n >= MaxLabelDepth {
			return LabelStack{}, 0, fmt.Errorf("packet: label stack deeper than %d entries", MaxLabelDepth)
		}
		tmp[n] = e
		n++
		off += LabelStackEntryLen
		if e.S {
			var s LabelStack
			for i := n - 1; i >= 0; i-- {
				s.Push(tmp[i])
			}
			return s, off, nil
		}
		if off >= len(b) {
			return LabelStack{}, 0, fmt.Errorf("packet: label stack ran past end of buffer without S bit")
		}
	}
}

func (s *LabelStack) String() string {
	out := "["
	for i := 0; i < int(s.depth); i++ {
		if i > 0 {
			out += " "
		}
		e := s.At(i)
		out += fmt.Sprintf("%d(exp=%d,ttl=%d)", e.Label, e.EXP, e.TTL)
	}
	return out + "]"
}
