package packet

// DropReason is a typed, allocation-free drop cause. The data plane returns
// these sentinels instead of formatted errors so the hot path never touches
// fmt; human-readable text is produced only when an observer (the OnDrop
// hook, a trace, the journal) actually asks for it. DropReason implements
// error — values below 256 convert to the error interface without
// allocating (the runtime's small-integer interning).
type DropReason uint8

// Drop causes, data plane first (device/mpls), then egress (netsim).
const (
	DropNone           DropReason = iota // not dropped
	DropTTLExpired                       // IP or label TTL reached zero
	DropNoLabelBinding                   // labelled packet with no ILM entry (RFC 3031 §3.18)
	DropBadILMOp                         // ILM entry with an invalid operation
	DropNoRoute                          // no matching route (global table or VRF)
	DropNoTransportLSP                   // VRF route resolved but no LSP to the egress PE
	DropPoliced                          // CE classifier policer rejected the packet
	DropNoSA                             // ESP packet with no SA for its SPI
	DropNotESP                           // decapsulation of a non-ESP packet
	DropBadSPI                           // ESP SPI does not match the SA
	DropReplay                           // ESP anti-replay window rejected the sequence
	DropNoRouter                         // arrival at a node with no forwarding element
	DropForeignLink                      // router forwarded out a link it does not own
	DropLinkDown                         // egress (or mid-flight) link is down
	DropQueueOverflow                    // egress queue refused the packet

	NumDropReasons int = iota
)

var dropReasonNames = [NumDropReasons]string{
	DropNone:           "none",
	DropTTLExpired:     "ttl_expired",
	DropNoLabelBinding: "no_label_binding",
	DropBadILMOp:       "bad_ilm_op",
	DropNoRoute:        "no_route",
	DropNoTransportLSP: "no_transport_lsp",
	DropPoliced:        "policed",
	DropNoSA:           "no_sa",
	DropNotESP:         "not_esp",
	DropBadSPI:         "bad_spi",
	DropReplay:         "replay",
	DropNoRouter:       "no_router",
	DropForeignLink:    "foreign_link",
	DropLinkDown:       "link_down",
	DropQueueOverflow:  "queue_overflow",
}

// String returns the stable snake_case name used as a telemetry label.
func (r DropReason) String() string {
	if int(r) < len(dropReasonNames) {
		return dropReasonNames[r]
	}
	return "unknown"
}

// Error makes DropReason usable as an error for observers that log one.
func (r DropReason) Error() string { return "drop: " + r.String() }
