// Package telemetry is the backbone's streaming observability plane: a
// metrics registry (counters, gauges, fixed-bucket histograms) keyed by
// typed labels, an IPFIX-style interval flow exporter, a bounded event
// journal, and an online SLA watcher that closes the paper's QoS loop by
// reacting to sustained breaches during the run instead of reporting them
// afterwards.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Instruments are resolved once at attach
//     time into plain pointers held by the hot path; a nil pointer means
//     "telemetry off" and every method on a nil instrument is a safe no-op,
//     so the packet path carries no map lookups, no interface calls, and no
//     allocations either way.
//  2. Determinism. All iteration that reaches output is over sorted keys,
//     timestamps are virtual (sim.Time), and nothing reads the wall clock —
//     two same-seed runs render byte-identical journals and snapshots.
//  3. No import cycles. This package depends only on internal/sim and the
//     standard library; data-plane packages import it, and the control
//     plane (rsvp) reports through a callback instead.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Labels identifies one time series. Empty fields are unset and omitted
// from rendered output; the struct is comparable so it can key a map
// without allocation.
type Labels struct {
	VPN    string `json:"vpn,omitempty"`
	Site   string `json:"site,omitempty"`
	Node   string `json:"node,omitempty"`
	Link   string `json:"link,omitempty"`   // directed link, "A->B"
	Class  string `json:"class,omitempty"`  // forwarding class name
	Policy string `json:"policy,omitempty"` // classifier policy name
	Reason string `json:"reason,omitempty"` // drop cause (packet.DropReason name)
}

// String renders the label set in a fixed field order, e.g.
// "{vpn=acme,link=PE1->P1,class=voice}". Unset fields are omitted; a fully
// empty label set renders as "".
func (l Labels) String() string {
	var b strings.Builder
	add := func(k, v string) {
		if v == "" {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		} else {
			b.WriteByte('{')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	add("vpn", l.VPN)
	add("site", l.Site)
	add("node", l.Node)
	add("link", l.Link)
	add("class", l.Class)
	add("policy", l.Policy)
	add("reason", l.Reason)
	if b.Len() == 0 {
		return ""
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing int64. All methods are safe on a
// nil receiver — instrumented code holds a nil *Counter when telemetry is
// disabled and calls it unconditionally.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins float64, safe on a nil receiver.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// DefaultLatencyBounds are the histogram bucket upper bounds (in ms) used
// for latency series when the caller does not supply its own: half-decade
// steps from sub-millisecond to one second.
var DefaultLatencyBounds = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// Histogram is a fixed-bucket histogram. counts has one slot per bound
// plus an overflow slot; Observe is a linear scan over ~a dozen bounds,
// allocation-free, and safe on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []uint64
	total  uint64
	sum    float64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (nil = DefaultLatencyBounds).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile (q in (0,1]) by linear interpolation
// within the containing bucket. Values in the overflow bucket report the
// last finite bound — a deliberate floor: the caller compares against SLA
// limits that live well inside the finite range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		if float64(cum) < target {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (target - float64(cum-c)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.bounds[len(h.bounds)-1]
}

// Reset zeroes the histogram (used by interval windows).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
}

// seriesKey identifies one metric series in the registry.
type seriesKey struct {
	name   string
	labels Labels
}

// Registry is the metric store. Instruments are get-or-create: resolving
// the same (name, labels) twice returns the same instrument, so counts
// from different attach points merge. A nil *Registry resolves every
// instrument to nil — the disabled plane.
type Registry struct {
	counters map[seriesKey]*Counter
	gauges   map[seriesKey]*Gauge
	hists    map[seriesKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[seriesKey]*Counter),
		gauges:   make(map[seriesKey]*Gauge),
		hists:    make(map[seriesKey]*Histogram),
	}
}

// Counter resolves (name, labels) to its counter, creating it on first use.
func (r *Registry) Counter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	k := seriesKey{name, l}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge resolves (name, labels) to its gauge, creating it on first use.
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	if r == nil {
		return nil
	}
	k := seriesKey{name, l}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram resolves (name, labels) to its histogram, creating it with the
// given bounds (nil = DefaultLatencyBounds) on first use.
func (r *Registry) Histogram(name string, l Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	k := seriesKey{name, l}
	h, ok := r.hists[k]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot. LE < 0 denotes the
// overflow (+Inf) bucket — a sentinel rather than math.Inf so the value
// survives encoding/json.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Metric is one series frozen into a snapshot.
type Metric struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels"`
	Kind   string `json:"kind"` // "counter" | "gauge" | "histogram"

	// Counter/gauge value.
	Value float64 `json:"value,omitempty"`

	// Histogram summary.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// String renders the metric as one text line.
func (m Metric) String() string {
	switch m.Kind {
	case "histogram":
		return fmt.Sprintf("%s%s count=%d sum=%.3f", m.Name, m.Labels, m.Count, m.Sum)
	default:
		return fmt.Sprintf("%s%s %g", m.Name, m.Labels, m.Value)
	}
}

// Snapshot freezes every series, sorted by name then label string, so the
// output is deterministic regardless of map iteration order.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		out = append(out, Metric{Name: k.name, Labels: k.labels, Kind: "counter", Value: float64(c.v)})
	}
	for k, g := range r.gauges {
		out = append(out, Metric{Name: k.name, Labels: k.labels, Kind: "gauge", Value: g.v})
	}
	for k, h := range r.hists {
		m := Metric{Name: k.name, Labels: k.labels, Kind: "histogram", Count: h.total, Sum: h.sum}
		m.Buckets = make([]Bucket, len(h.counts))
		for i, c := range h.counts {
			le := -1.0
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			m.Buckets[i] = Bucket{LE: le, Count: c}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels.String() < out[j].Labels.String()
	})
	return out
}
