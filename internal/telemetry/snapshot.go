package telemetry

import (
	"fmt"
	"sort"

	"mplsvpn/internal/sim"
	"mplsvpn/internal/snapshot"
)

// Evicted returns how many journal entries the ring has dropped to stay
// within its capacity (recorded minus retained).
func (j *Journal) Evicted() uint64 {
	if j == nil {
		return 0
	}
	return j.seq - uint64(j.n)
}

func saveLabels(w *snapshot.Writer, l Labels) {
	w.Str(l.VPN)
	w.Str(l.Site)
	w.Str(l.Node)
	w.Str(l.Link)
	w.Str(l.Class)
	w.Str(l.Policy)
	w.Str(l.Reason)
}

func loadLabels(r *snapshot.Reader) Labels {
	return Labels{
		VPN:    r.Str(),
		Site:   r.Str(),
		Node:   r.Str(),
		Link:   r.Str(),
		Class:  r.Str(),
		Policy: r.Str(),
		Reason: r.Str(),
	}
}

func saveHistogram(w *snapshot.Writer, h *Histogram) {
	w.U64(uint64(len(h.bounds)))
	for _, b := range h.bounds {
		w.F64(b)
	}
	for _, c := range h.counts {
		w.U64(c)
	}
	w.U64(h.total)
	w.F64(h.sum)
}

// loadHistogramInto overlays serialized contents onto h, which must have the
// same bucket layout (the scenario rebuild creates it with the same bounds).
func loadHistogramInto(r *snapshot.Reader, h *Histogram) error {
	nb := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	if nb != len(h.bounds) {
		return fmt.Errorf("%w: histogram has %d bounds, snapshot %d", snapshot.ErrMismatch, len(h.bounds), nb)
	}
	for i := 0; i < nb; i++ {
		h.bounds[i] = r.F64()
	}
	for i := range h.counts {
		h.counts[i] = r.U64()
	}
	h.total = r.U64()
	h.sum = r.F64()
	return r.Err()
}

// SaveState serializes every live series, sorted by (name, labels) so the
// encoding is independent of map iteration order.
func (r *Registry) SaveState(w *snapshot.Writer) {
	cks := make([]seriesKey, 0, len(r.counters))
	for k := range r.counters {
		cks = append(cks, k)
	}
	sortSeries(cks)
	w.U64(uint64(len(cks)))
	for _, k := range cks {
		w.Str(k.name)
		saveLabels(w, k.labels)
		w.I64(r.counters[k].v)
	}

	gks := make([]seriesKey, 0, len(r.gauges))
	for k := range r.gauges {
		gks = append(gks, k)
	}
	sortSeries(gks)
	w.U64(uint64(len(gks)))
	for _, k := range gks {
		w.Str(k.name)
		saveLabels(w, k.labels)
		w.F64(r.gauges[k].v)
	}

	hks := make([]seriesKey, 0, len(r.hists))
	for k := range r.hists {
		hks = append(hks, k)
	}
	sortSeries(hks)
	w.U64(uint64(len(hks)))
	for _, k := range hks {
		w.Str(k.name)
		saveLabels(w, k.labels)
		saveHistogram(w, r.hists[k])
	}
}

func sortSeries(keys []seriesKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels.String() < keys[j].labels.String()
	})
}

// LoadState overlays serialized series values onto the registry. Instruments
// already resolved by the scenario rebuild keep their pointers (the hot path
// holds them directly); series the rebuild has not touched yet are created.
func (r *Registry) LoadState(rd *snapshot.Reader) error {
	nc := rd.Count(9)
	for i := 0; i < nc; i++ {
		name := rd.Str()
		l := loadLabels(rd)
		v := rd.I64()
		if rd.Err() != nil {
			return rd.Err()
		}
		r.Counter(name, l).v = v
	}

	ng := rd.Count(9)
	for i := 0; i < ng; i++ {
		name := rd.Str()
		l := loadLabels(rd)
		v := rd.F64()
		if rd.Err() != nil {
			return rd.Err()
		}
		r.Gauge(name, l).v = v
	}

	nh := rd.Count(9)
	for i := 0; i < nh; i++ {
		name := rd.Str()
		l := loadLabels(rd)
		if rd.Err() != nil {
			return rd.Err()
		}
		h, ok := r.hists[seriesKey{name, l}]
		if !ok {
			// Peek the bounds to build an identical histogram, then rewind is
			// not possible on a stream — so load into a shell sized from the
			// serialized bound count instead.
			nb := rd.Count(8)
			if rd.Err() != nil {
				return rd.Err()
			}
			bounds := make([]float64, nb)
			for j := range bounds {
				bounds[j] = rd.F64()
			}
			h = &Histogram{bounds: bounds, counts: make([]uint64, nb+1)}
			for j := range h.counts {
				h.counts[j] = rd.U64()
			}
			h.total = rd.U64()
			h.sum = rd.F64()
			if rd.Err() != nil {
				return rd.Err()
			}
			r.hists[seriesKey{name, l}] = h
			continue
		}
		if err := loadHistogramInto(rd, h); err != nil {
			return err
		}
	}
	return rd.Err()
}

// SaveState serializes the journal ring: retained entries oldest-first plus
// the global sequence cursor.
func (j *Journal) SaveState(w *snapshot.Writer) {
	w.U64(uint64(len(j.buf)))
	w.U64(j.seq)
	w.U64(uint64(j.n))
	for i := 0; i < j.n; i++ {
		e := j.buf[(j.start+i)%len(j.buf)]
		w.U64(e.Seq)
		w.I64(int64(e.At))
		w.U64(uint64(e.Kind))
		w.Str(e.Subject)
		w.Str(e.Detail)
	}
}

// LoadState replaces the journal's contents. The ring is re-normalized to
// start at slot zero — equivalent state, since eviction order depends only
// on entry order, not slot positions.
func (j *Journal) LoadState(r *snapshot.Reader) error {
	capacity := int(r.U64())
	seq := r.U64()
	n := r.Count(5)
	if r.Err() != nil {
		return r.Err()
	}
	if capacity <= 0 || n > capacity {
		return fmt.Errorf("%w: journal capacity %d with %d entries", snapshot.ErrCorrupt, capacity, n)
	}
	buf := make([]Event, capacity)
	for i := 0; i < n; i++ {
		k := r.U64()
		at := sim.Time(r.I64())
		kind := r.U64()
		subj := r.Str()
		det := r.Str()
		if r.Err() != nil {
			return r.Err()
		}
		if kind > uint64(eventKindEnd) {
			return fmt.Errorf("%w: journal event kind %d", snapshot.ErrCorrupt, kind)
		}
		buf[i] = Event{Seq: k, At: at, Kind: EventKind(kind), Subject: subj, Detail: det}
	}
	j.buf = buf
	j.start = 0
	j.n = n
	j.seq = seq
	return r.Err()
}

// SaveState serializes the exporter's dynamics: eviction count, per-key
// accumulators (already sorted), retained records, and the interval cursor.
// Interval, MaxRecords, and OnRoll are scenario configuration.
func (x *FlowExporter) SaveState(w *snapshot.Writer) {
	w.I64(int64(x.Evicted))
	w.I64(int64(x.start))
	w.U64(uint64(len(x.keys)))
	for _, k := range x.keys {
		w.Str(k.VPN)
		w.Str(k.SrcSite)
		w.Str(k.DstSite)
		w.Str(k.Class)
		a := x.acct[k]
		w.I64(a.pkts)
		w.I64(a.bytes)
	}
	w.U64(uint64(len(x.records)))
	for _, rec := range x.records {
		w.I64(int64(rec.Start))
		w.I64(int64(rec.End))
		w.Str(rec.VPN)
		w.Str(rec.SrcSite)
		w.Str(rec.DstSite)
		w.Str(rec.Class)
		w.I64(rec.Packets)
		w.I64(rec.Bytes)
	}
}

// LoadState replaces the exporter's dynamics, keeping its configuration and
// OnRoll hook from the scenario rebuild.
func (x *FlowExporter) LoadState(r *snapshot.Reader) error {
	x.Evicted = int(r.I64())
	x.start = sim.Time(r.I64())
	nk := r.Count(6)
	if r.Err() != nil {
		return r.Err()
	}
	x.keys = make([]FlowKey, 0, nk)
	x.acct = make(map[FlowKey]*flowAcct, nk)
	for i := 0; i < nk; i++ {
		k := FlowKey{VPN: r.Str(), SrcSite: r.Str(), DstSite: r.Str(), Class: r.Str()}
		a := &flowAcct{pkts: r.I64(), bytes: r.I64()}
		if r.Err() != nil {
			return r.Err()
		}
		x.keys = append(x.keys, k)
		x.acct[k] = a
	}
	nr := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	x.records = make([]FlowRecord, 0, nr)
	for i := 0; i < nr; i++ {
		rec := FlowRecord{
			Start: sim.Time(r.I64()),
			End:   sim.Time(r.I64()),
			FlowKey: FlowKey{
				VPN: r.Str(), SrcSite: r.Str(), DstSite: r.Str(), Class: r.Str(),
			},
			Packets: r.I64(),
			Bytes:   r.I64(),
		}
		if r.Err() != nil {
			return r.Err()
		}
		x.records = append(x.records, rec)
	}
	return r.Err()
}

// SaveState serializes every target's interval window and breach state
// machine, in target order. Targets and hooks are scenario configuration.
func (w *Watcher) SaveState(sw *snapshot.Writer) {
	sw.U64(uint64(len(w.Targets)))
	for _, t := range w.Targets {
		st := w.states[t.VPN]
		saveHistogram(sw, st.lat)
		sw.I64(st.delivered)
		sw.I64(st.dropped)
		sw.I64(int64(st.bad))
		sw.I64(int64(st.good))
		sw.Bool(st.breached)
		sw.I64(int64(st.breaches))
		sw.I64(int64(st.clears))
	}
}

// LoadState overlays serialized state onto the watcher, which must have been
// rebuilt with the same target list.
func (w *Watcher) LoadState(r *snapshot.Reader) error {
	n := r.Count(10)
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(w.Targets) {
		return fmt.Errorf("%w: watcher has %d targets, snapshot %d", snapshot.ErrMismatch, len(w.Targets), n)
	}
	for _, t := range w.Targets {
		st := w.states[t.VPN]
		if err := loadHistogramInto(r, st.lat); err != nil {
			return err
		}
		st.delivered = r.I64()
		st.dropped = r.I64()
		st.bad = int(r.I64())
		st.good = int(r.I64())
		st.breached = r.Bool()
		st.breaches = int(r.I64())
		st.clears = int(r.I64())
		if r.Err() != nil {
			return r.Err()
		}
	}
	return r.Err()
}
