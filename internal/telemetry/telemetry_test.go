package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"mplsvpn/internal/sim"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(3)
	h.Observe(1)
	h.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var r *Registry
	if r.Counter("x", Labels{}) != nil || r.Gauge("x", Labels{}) != nil ||
		r.Histogram("x", Labels{}, nil) != nil || r.Snapshot() != nil {
		t.Fatal("nil registry must resolve nil instruments")
	}
}

// The disabled hot path must be allocation-free: nil instrument calls are
// what instrumented code executes when telemetry is off.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var c *Counter
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(42)
		h.Observe(3.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %.1f/op", allocs)
	}
}

// The enabled record path must also be allocation-free in steady state.
func TestEnabledPathZeroAllocSteadyState(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts", Labels{VPN: "v"})
	h := r.Histogram("lat", Labels{VPN: "v"}, nil)
	x := NewFlowExporter(100 * sim.Millisecond)
	k := FlowKey{VPN: "v", SrcSite: "a", DstSite: "b", Class: "voice"}
	x.Record(0, k, 100) // first sight allocates the accumulator
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(128)
		h.Observe(4.2)
		x.Record(sim.Millisecond, k, 128)
	})
	if allocs != 0 {
		t.Fatalf("enabled steady-state path allocated %.1f/op", allocs)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", Labels{Node: "PE1"})
	b := r.Counter("x", Labels{Node: "PE1"})
	if a != b {
		t.Fatal("same (name, labels) must resolve the same counter")
	}
	if r.Counter("x", Labels{Node: "PE2"}) == a {
		t.Fatal("different labels must resolve different counters")
	}
	a.Add(3)
	b.Inc()
	if a.Value() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", q)
	}
	h2 := NewHistogram([]float64{1, 2, 5, 10})
	h2.Observe(100) // overflow bucket
	if q := h2.Quantile(0.99); q != 10 {
		t.Fatalf("overflow quantile = %v, want last bound 10", q)
	}
	if h.Count() != 100 || h.Sum() != 150 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestLabelsString(t *testing.T) {
	if s := (Labels{}).String(); s != "" {
		t.Fatalf("empty labels = %q", s)
	}
	l := Labels{VPN: "acme", Link: "PE1->P1", Class: "voice"}
	if s := l.String(); s != "{vpn=acme,link=PE1->P1,class=voice}" {
		t.Fatalf("labels = %q", s)
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 5; i++ {
		j.Record(sim.Time(i), EventLSPUp, "lsp:x", "")
	}
	ev := j.Events()
	if len(ev) != 3 || j.Total() != 5 {
		t.Fatalf("len=%d total=%d", len(ev), j.Total())
	}
	if ev[0].Seq != 2 || ev[2].Seq != 4 {
		t.Fatalf("retained seqs = %d..%d, want 2..4", ev[0].Seq, ev[2].Seq)
	}
	var nilJ *Journal
	nilJ.Record(0, EventLSPUp, "x", "") // must not panic
	if nilJ.Len() != 0 {
		t.Fatal("nil journal must stay empty")
	}
}

func TestFlowExporterIntervals(t *testing.T) {
	x := NewFlowExporter(100 * sim.Millisecond)
	k1 := FlowKey{VPN: "v", SrcSite: "a", DstSite: "b", Class: "voice"}
	k2 := FlowKey{VPN: "v", SrcSite: "a", DstSite: "b", Class: "best-effort"}
	x.Record(10*sim.Millisecond, k1, 100)
	x.Record(20*sim.Millisecond, k2, 1400)
	x.Record(30*sim.Millisecond, k1, 100)
	// Crossing into the second interval flushes the first.
	x.Record(110*sim.Millisecond, k1, 100)
	recs := x.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (one per key in interval 0)", len(recs))
	}
	// Sorted by key: best-effort < voice.
	if recs[0].Class != "best-effort" || recs[0].Packets != 1 || recs[0].Bytes != 1400 {
		t.Fatalf("rec[0] = %+v", recs[0])
	}
	if recs[1].Class != "voice" || recs[1].Packets != 2 || recs[1].Bytes != 200 {
		t.Fatalf("rec[1] = %+v", recs[1])
	}
	if recs[0].Start != 0 || recs[0].End != 100*sim.Millisecond {
		t.Fatalf("interval = [%v,%v)", recs[0].Start, recs[0].End)
	}
	// RollTo across a long idle gap flushes the in-flight interval and
	// skips the empty ones without emitting records.
	x.RollTo(sim.Second)
	if got := len(x.Records()); got != 3 {
		t.Fatalf("records after idle roll = %d, want 3", got)
	}
}

func TestFlowExporterOnRollFiresEveryInterval(t *testing.T) {
	x := NewFlowExporter(100 * sim.Millisecond)
	var rolls []sim.Time
	x.OnRoll = func(start, end sim.Time) { rolls = append(rolls, end) }
	x.RollTo(350 * sim.Millisecond)
	if len(rolls) != 3 {
		t.Fatalf("rolls = %v, want 3 interval ends", rolls)
	}
	if rolls[2] != 300*sim.Millisecond {
		t.Fatalf("last roll end = %v", rolls[2])
	}
}

func TestFlowExporterEviction(t *testing.T) {
	x := NewFlowExporter(10 * sim.Millisecond)
	x.MaxRecords = 2
	k := FlowKey{VPN: "v", SrcSite: "a", DstSite: "b", Class: "voice"}
	for i := 0; i < 4; i++ {
		x.Record(sim.Time(i*10)*sim.Millisecond+sim.Millisecond, k, 100)
	}
	x.RollTo(50 * sim.Millisecond)
	if len(x.Records()) != 2 || x.Evicted != 2 {
		t.Fatalf("len=%d evicted=%d", len(x.Records()), x.Evicted)
	}
	// Oldest evicted: the retained records are the most recent intervals.
	if x.Records()[0].Start != 20*sim.Millisecond {
		t.Fatalf("oldest retained start = %v", x.Records()[0].Start)
	}
}

func TestWatcherBreachAndRecovery(t *testing.T) {
	j := NewJournal(0)
	w := NewWatcher([]SLATarget{{VPN: "v", MaxP99Ms: 20, MaxLoss: 0.01, Sustain: 2, Clear: 2}}, j)
	var breaches, clears []string
	w.OnBreach = func(vpn, reason string) { breaches = append(breaches, vpn+": "+reason) }
	w.OnClear = func(vpn string) { clears = append(clears, vpn) }

	feed := func(lat float64, n int) {
		for i := 0; i < n; i++ {
			w.ObserveDelivery("v", lat)
		}
	}

	// Interval 1: clean.
	feed(5, 10)
	w.Eval(100 * sim.Millisecond)
	if w.Breached("v") {
		t.Fatal("breached after one clean interval")
	}
	// Intervals 2-3: latency blows the p99 target; breach fires on the
	// second consecutive bad interval, not the first.
	feed(50, 10)
	w.Eval(200 * sim.Millisecond)
	if w.Breached("v") || len(breaches) != 0 {
		t.Fatal("breach fired before Sustain intervals")
	}
	feed(50, 10)
	w.Eval(300 * sim.Millisecond)
	if !w.Breached("v") || len(breaches) != 1 {
		t.Fatalf("breached=%v breaches=%v", w.Breached("v"), breaches)
	}
	if !strings.Contains(breaches[0], "p99") {
		t.Fatalf("reason = %q", breaches[0])
	}
	// An empty interval is neutral: no progress toward recovery.
	w.Eval(400 * sim.Millisecond)
	// Two clean intervals clear it.
	feed(5, 10)
	w.Eval(500 * sim.Millisecond)
	feed(5, 10)
	w.Eval(600 * sim.Millisecond)
	if w.Breached("v") || len(clears) != 1 {
		t.Fatalf("breached=%v clears=%v", w.Breached("v"), clears)
	}

	// The journal recorded both transitions, exactly once each.
	txt := j.Render()
	if strings.Count(txt, "sla_breach") != 1 || strings.Count(txt, "sla_clear") != 1 {
		t.Fatalf("journal:\n%s", txt)
	}
	st := w.Status()
	if len(st) != 1 || st[0].Breaches != 1 || st[0].Clears != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestWatcherLossBreach(t *testing.T) {
	w := NewWatcher([]SLATarget{{VPN: "v", MaxLoss: 0.1, Sustain: 1}}, nil)
	fired := false
	w.OnBreach = func(vpn, reason string) { fired = strings.Contains(reason, "loss") }
	// 100% loss: drops only.
	w.ObserveDrop("v")
	w.ObserveDrop("v")
	w.Eval(100 * sim.Millisecond)
	if !fired || !w.Breached("v") {
		t.Fatal("total starvation must breach the loss target")
	}
}

func TestSnapshotRendering(t *testing.T) {
	tel := New(100*sim.Millisecond, 0)
	tel.Reg.Counter("pkts", Labels{VPN: "v"}).Add(5)
	tel.Reg.Gauge("util", Labels{Link: "A->B"}).Set(0.5)
	tel.Reg.Histogram("lat", Labels{VPN: "v"}, nil).Observe(3)
	tel.Journal.Record(sim.Second, EventLinkDown, "link:A<->B", "detect 50ms")
	tel.Flows.Record(sim.Millisecond, FlowKey{VPN: "v", SrcSite: "a", DstSite: "b", Class: "voice"}, 100)
	sampled := false
	tel.OnSample = func() { sampled = true }

	s := tel.Snapshot(sim.Second)
	if !sampled {
		t.Fatal("OnSample did not run")
	}
	txt := s.Text()
	for _, want := range []string{
		"telemetry snapshot @ 1s", "pkts{vpn=v} 5", "util{link=A->B} 0.5",
		"lat{vpn=v} count=1", "link_down", "vpn=v a->b class=voice pkts=1 bytes=100",
	} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text missing %q:\n%s", want, txt)
		}
	}

	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.At != sim.Second || len(back.Metrics) != 3 || len(back.Events) != 1 {
		t.Fatalf("round-trip = %+v", back)
	}
	if !strings.Contains(string(data), `"kind": "link_down"`) {
		t.Fatal("event kind must marshal as its name")
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", Labels{}).Inc()
	r.Counter("a", Labels{Node: "z"}).Inc()
	r.Counter("a", Labels{Node: "m"}).Inc()
	snap := r.Snapshot()
	if snap[0].Name != "a" || snap[0].Labels.Node != "m" || snap[2].Name != "b" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
}
