package telemetry

// ShardAccumulator is a bank of per-shard int64 accumulator cells for the
// parallel simulation backend: each worker adds to its own shard's cells
// during a segment with no locks and no cross-core cache-line contention,
// and the coordinator folds the cells into the real (single-writer) totals
// at the tick barrier. The cells are padded so two shards never share a
// cache line.
type ShardAccumulator struct {
	counters int
	cells    []paddedCell
}

// cacheLine is the assumed coherence granularity; 64 bytes covers every
// platform this simulator targets.
const cacheLine = 64

type paddedCell struct {
	v [8]int64 // up to 8 counters per shard in one line
	_ [cacheLine - cacheLine%8]byte
}

// NewShardAccumulator returns an accumulator with the given number of
// counters (at most 8) replicated across shards cells.
func NewShardAccumulator(shards, counters int) *ShardAccumulator {
	if counters < 1 || counters > 8 {
		panic("telemetry: ShardAccumulator supports 1..8 counters")
	}
	return &ShardAccumulator{counters: counters, cells: make([]paddedCell, shards)}
}

// Add accumulates delta into counter c of shard's cell. Only the worker
// that owns shard may call it during a segment.
func (a *ShardAccumulator) Add(shard, c int, delta int64) {
	a.cells[shard].v[c] += delta
}

// Drain sums every shard's cells into fn(counter, total) and zeroes them.
// Call only from the coordinator at a barrier; totals are deterministic
// because addition commutes and each cell had exactly one writer.
func (a *ShardAccumulator) Drain(fn func(c int, total int64)) {
	for c := 0; c < a.counters; c++ {
		var total int64
		for i := range a.cells {
			total += a.cells[i].v[c]
			a.cells[i].v[c] = 0
		}
		if total != 0 {
			fn(c, total)
		}
	}
}
