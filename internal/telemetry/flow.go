package telemetry

import (
	"fmt"
	"sort"

	"mplsvpn/internal/sim"
)

// FlowKey aggregates deliveries the way an IPFIX exporter on a PE would:
// per (VPN, source site, destination site, forwarding class). Comparable,
// so the per-interval accumulators need no per-packet allocation.
type FlowKey struct {
	VPN     string `json:"vpn"`
	SrcSite string `json:"src"`
	DstSite string `json:"dst"`
	Class   string `json:"class"`
}

func (k FlowKey) String() string {
	return fmt.Sprintf("vpn=%s %s->%s class=%s", k.VPN, k.SrcSite, k.DstSite, k.Class)
}

// flowKeyLess orders keys for deterministic emission.
func flowKeyLess(a, b FlowKey) bool {
	if a.VPN != b.VPN {
		return a.VPN < b.VPN
	}
	if a.SrcSite != b.SrcSite {
		return a.SrcSite < b.SrcSite
	}
	if a.DstSite != b.DstSite {
		return a.DstSite < b.DstSite
	}
	return a.Class < b.Class
}

// FlowRecord is one exported record: the traffic of one key over one
// export interval [Start, End).
type FlowRecord struct {
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
	FlowKey
	Packets int64 `json:"packets"`
	Bytes   int64 `json:"bytes"`
}

// String renders the record as one text line.
func (r FlowRecord) String() string {
	return fmt.Sprintf("[%v,%v) %s pkts=%d bytes=%d", r.Start, r.End, r.FlowKey, r.Packets, r.Bytes)
}

// Exporter defaults.
const (
	DefaultExportInterval = 100 * sim.Millisecond
	DefaultMaxRecords     = 4096
)

// flowAcct is one key's accumulator for the current interval. Accumulators
// persist across intervals (zeroed at flush) so a steady flow allocates
// exactly once over the whole run.
type flowAcct struct {
	pkts  int64
	bytes int64
}

// FlowExporter accumulates per-key traffic and flushes a batch of
// FlowRecords at every interval boundary of virtual time. It has no timer
// of its own: Record and RollTo advance it lazily, so an engine Run() can
// still quiesce, and a caller wanting wall-aligned ticks just schedules
// RollTo on the sim engine up to its horizon.
type FlowExporter struct {
	// Interval is the export period (<= 0 selects DefaultExportInterval).
	Interval sim.Time
	// MaxRecords bounds retained records; the oldest are evicted (and
	// counted in Evicted) once exceeded. <= 0 selects DefaultMaxRecords.
	MaxRecords int
	// OnRoll, when set, runs after each interval [start, end) flushes —
	// the hook the SLA watcher and utilization sampler hang off.
	OnRoll func(start, end sim.Time)

	// Evicted counts records dropped to honour MaxRecords.
	Evicted int

	keys    []FlowKey // sorted; insertion is rare (first sight of a key)
	acct    map[FlowKey]*flowAcct
	records []FlowRecord
	start   sim.Time // current interval's start
}

// NewFlowExporter returns an exporter with the given interval
// (<= 0 selects DefaultExportInterval).
func NewFlowExporter(interval sim.Time) *FlowExporter {
	x := &FlowExporter{Interval: interval, acct: make(map[FlowKey]*flowAcct)}
	x.normalize()
	return x
}

func (x *FlowExporter) normalize() {
	if x.Interval <= 0 {
		x.Interval = DefaultExportInterval
	}
	if x.MaxRecords <= 0 {
		x.MaxRecords = DefaultMaxRecords
	}
}

// Record accounts one delivered packet at virtual time now, first flushing
// any export intervals that now has passed. Steady-state cost is one map
// lookup and two adds — no allocation once a key has been seen.
func (x *FlowExporter) Record(now sim.Time, k FlowKey, bytes int) {
	if x == nil {
		return
	}
	x.RollTo(now)
	a, ok := x.acct[k]
	if !ok {
		a = &flowAcct{}
		x.acct[k] = a
		i := sort.Search(len(x.keys), func(i int) bool { return !flowKeyLess(x.keys[i], k) })
		x.keys = append(x.keys, FlowKey{})
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = k
	}
	a.pkts++
	a.bytes += int64(bytes)
}

// RollTo flushes every interval that ends at or before now. Callers drive
// this from delivery/drop hooks (lazy mode) or from pre-scheduled engine
// events (tick mode); both yield the same records because intervals are
// aligned to multiples of Interval regardless of who triggers the flush.
func (x *FlowExporter) RollTo(now sim.Time) {
	if x == nil {
		return
	}
	x.normalize()
	for x.start+x.Interval <= now {
		end := x.start + x.Interval
		x.flush(x.start, end)
		x.start = end
	}
}

// flush emits the current interval's non-empty accumulators in key order,
// zeroes them, and fires OnRoll.
func (x *FlowExporter) flush(start, end sim.Time) {
	for _, k := range x.keys {
		a := x.acct[k]
		if a.pkts == 0 {
			continue
		}
		if len(x.records) >= x.MaxRecords {
			copy(x.records, x.records[1:])
			x.records = x.records[:len(x.records)-1]
			x.Evicted++
		}
		x.records = append(x.records, FlowRecord{
			Start: start, End: end, FlowKey: k, Packets: a.pkts, Bytes: a.bytes,
		})
		a.pkts, a.bytes = 0, 0
	}
	if x.OnRoll != nil {
		x.OnRoll(start, end)
	}
}

// Records returns the retained flow records, oldest first.
func (x *FlowExporter) Records() []FlowRecord {
	if x == nil {
		return nil
	}
	return x.records
}
