package telemetry

import (
	"fmt"
	"strings"

	"mplsvpn/internal/sim"
)

// EventKind classifies a journal entry.
type EventKind uint8

// Journal event kinds.
const (
	EventLinkDown EventKind = iota
	EventLinkUp
	EventLSPUp
	EventLSPDown
	EventLSPSetupFailed
	EventLSPPreempted
	EventLSPReoptimized
	EventSLABreach
	EventSLAClear
	EventNodeDown
	EventNodeUp
	EventTERetry
	EventTEDegraded
	EventTERestored
	EventOpRejected
	EventCtrlLoss
	EventChaos
	EventInvariantViolation
	EventSessionFlap
	EventSessionRestored
	EventStaleSwept
	EventRouteDamped
	EventRouteReused
	EventIntentCommit
	EventIntentRollback
	EventIntentQuarantine
)

// eventKindEnd is the last valid kind; UnmarshalJSON ranges up to it.
const eventKindEnd = EventIntentQuarantine

func (k EventKind) String() string {
	switch k {
	case EventLinkDown:
		return "link_down"
	case EventLinkUp:
		return "link_up"
	case EventLSPUp:
		return "lsp_up"
	case EventLSPDown:
		return "lsp_down"
	case EventLSPSetupFailed:
		return "lsp_setup_failed"
	case EventLSPPreempted:
		return "lsp_preempted"
	case EventLSPReoptimized:
		return "lsp_reoptimized"
	case EventSLABreach:
		return "sla_breach"
	case EventSLAClear:
		return "sla_clear"
	case EventNodeDown:
		return "node_down"
	case EventNodeUp:
		return "node_up"
	case EventTERetry:
		return "te_retry"
	case EventTEDegraded:
		return "te_degraded"
	case EventTERestored:
		return "te_restored"
	case EventOpRejected:
		return "op_rejected"
	case EventCtrlLoss:
		return "ctrl_loss"
	case EventChaos:
		return "chaos"
	case EventInvariantViolation:
		return "invariant_violation"
	case EventSessionFlap:
		return "session_flap"
	case EventSessionRestored:
		return "session_restored"
	case EventStaleSwept:
		return "stale_swept"
	case EventRouteDamped:
		return "route_damped"
	case EventRouteReused:
		return "route_reused"
	case EventIntentCommit:
		return "intent_commit"
	case EventIntentRollback:
		return "intent_rollback"
	case EventIntentQuarantine:
		return "intent_quarantine"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// MarshalJSON encodes the kind as its string name, keeping JSON snapshots
// readable and stable even if the enum is ever reordered.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the string names MarshalJSON produces.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	name := strings.Trim(string(data), `"`)
	for c := EventLinkDown; c <= eventKindEnd; c++ {
		if c.String() == name {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("unknown event kind %q", name)
}

// Event is one journal entry. Seq is a global sequence number assigned at
// record time, so entries remain totally ordered even when several land on
// the same virtual timestamp.
type Event struct {
	Seq     uint64    `json:"seq"`
	At      sim.Time  `json:"at"`
	Kind    EventKind `json:"kind"`
	Subject string    `json:"subject"`          // "lsp:voice", "link:P1->PE2", "vpn:acme"
	Detail  string    `json:"detail,omitempty"` // free-form, deterministic text
}

// String renders the entry as one journal line.
func (e Event) String() string {
	s := fmt.Sprintf("#%04d %12s  %-16s %s", e.Seq, e.At, e.Kind, e.Subject)
	if e.Detail != "" {
		s += "  " + e.Detail
	}
	return s
}

// DefaultJournalCap bounds the journal when the caller passes no capacity:
// enough for every control-plane event of the experiment scenarios while
// keeping a runaway flap storm from growing without bound.
const DefaultJournalCap = 512

// Journal is a bounded ring buffer of control-plane and SLA events. When
// full, the oldest entries are evicted (and counted), like a fixed-size
// syslog ring on a router. A nil *Journal drops every record.
type Journal struct {
	buf   []Event
	start int // index of the oldest entry
	n     int // live entries
	seq   uint64
}

// NewJournal returns a journal holding at most capacity events
// (capacity <= 0 selects DefaultJournalCap).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (j *Journal) Record(at sim.Time, kind EventKind, subject, detail string) {
	if j == nil {
		return
	}
	e := Event{Seq: j.seq, At: at, Kind: kind, Subject: subject, Detail: detail}
	j.seq++
	if j.n < len(j.buf) {
		j.buf[(j.start+j.n)%len(j.buf)] = e
		j.n++
		return
	}
	j.buf[j.start] = e
	j.start = (j.start + 1) % len(j.buf)
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return j.n
}

// Total returns the number of events ever recorded (retained + evicted).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	return j.seq
}

// Events returns the retained events oldest-first.
func (j *Journal) Events() []Event {
	if j == nil || j.n == 0 {
		return nil
	}
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%len(j.buf)]
	}
	return out
}

// Render formats the retained events one per line, oldest first. The
// output is deterministic for a fixed seed — the byte-identity property
// the determinism tests assert.
func (j *Journal) Render() string {
	var b strings.Builder
	for _, e := range j.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
