package telemetry

import (
	"fmt"
	"strings"

	"mplsvpn/internal/sim"
)

// SLATarget is one VPN's online service-level contract, evaluated against
// each export interval's traffic. Zero-valued limits are not checked.
type SLATarget struct {
	VPN string

	MaxP50Ms float64 // median one-way latency ceiling, ms
	MaxP99Ms float64 // p99 one-way latency ceiling, ms
	MaxLoss  float64 // loss-fraction ceiling per interval (0..1)

	// Sustain is how many consecutive breaching intervals trigger the
	// breach action; Clear is how many consecutive clean intervals after a
	// breach declare recovery. Both default to 2 — one bad interval is
	// noise, a sustained run is an incident.
	Sustain int
	Clear   int
}

func (t SLATarget) sustain() int {
	if t.Sustain <= 0 {
		return 2
	}
	return t.Sustain
}

func (t SLATarget) clear() int {
	if t.Clear <= 0 {
		return 2
	}
	return t.Clear
}

// slaState is the per-target interval window plus the breach state machine.
type slaState struct {
	lat       *Histogram // this interval's latency samples, reset each Eval
	delivered int64
	dropped   int64

	bad      int // consecutive breaching intervals
	good     int // consecutive clean intervals
	breached bool
	breaches int
	clears   int
}

// SLAStatus is one target's state frozen into a snapshot.
type SLAStatus struct {
	VPN      string `json:"vpn"`
	Breached bool   `json:"breached"`
	Breaches int    `json:"breaches"`
	Clears   int    `json:"clears"`
}

// Watcher evaluates SLA targets online, once per export interval, against
// the traffic observed in that interval only — so it reacts to the
// network's current state, not the run's history. On a sustained breach it
// journals the event and fires OnBreach (the pluggable reoptimize/resize
// action); on sustained recovery it journals the clear. A nil *Watcher
// ignores every observation.
type Watcher struct {
	Targets []SLATarget
	Journal *Journal

	// OnBreach runs once per breach transition (not per interval) with a
	// deterministic reason string.
	OnBreach func(vpn, reason string)
	// OnClear runs once per recovery transition.
	OnClear func(vpn string)

	states map[string]*slaState
}

// NewWatcher builds a watcher over the given targets, journaling
// transitions into j (which may be nil).
func NewWatcher(targets []SLATarget, j *Journal) *Watcher {
	w := &Watcher{Targets: targets, Journal: j, states: make(map[string]*slaState)}
	for _, t := range targets {
		w.states[t.VPN] = &slaState{lat: NewHistogram(nil)}
	}
	return w
}

// ObserveDelivery feeds one delivered packet's one-way latency (ms) into
// the VPN's current interval window. VPNs without a target are ignored.
func (w *Watcher) ObserveDelivery(vpn string, latencyMs float64) {
	if w == nil {
		return
	}
	if st, ok := w.states[vpn]; ok {
		st.lat.Observe(latencyMs)
		st.delivered++
	}
}

// ObserveDrop feeds one dropped packet into the VPN's interval window.
func (w *Watcher) ObserveDrop(vpn string) {
	if w == nil {
		return
	}
	if st, ok := w.states[vpn]; ok {
		st.dropped++
	}
}

// Eval closes the interval ending at 'at': each target's window is scored
// against its limits, the breach state machine advances, and the window
// resets. Intervals with no traffic leave the streaks untouched — silence
// is neither a breach nor evidence of recovery.
func (w *Watcher) Eval(at sim.Time) {
	if w == nil {
		return
	}
	for i := range w.Targets {
		t := &w.Targets[i]
		st := w.states[t.VPN]
		total := st.delivered + st.dropped
		if total == 0 {
			continue
		}
		var reasons []string
		if t.MaxP50Ms > 0 {
			if p50 := st.lat.Quantile(0.50); p50 > t.MaxP50Ms {
				reasons = append(reasons, fmt.Sprintf("p50 %.1fms > %.1fms", p50, t.MaxP50Ms))
			}
		}
		if t.MaxP99Ms > 0 {
			if p99 := st.lat.Quantile(0.99); p99 > t.MaxP99Ms {
				reasons = append(reasons, fmt.Sprintf("p99 %.1fms > %.1fms", p99, t.MaxP99Ms))
			}
		}
		if t.MaxLoss > 0 {
			if loss := float64(st.dropped) / float64(total); loss > t.MaxLoss {
				reasons = append(reasons, fmt.Sprintf("loss %.1f%% > %.1f%%", loss*100, t.MaxLoss*100))
			}
		}

		if len(reasons) > 0 {
			st.bad++
			st.good = 0
		} else {
			st.good++
			st.bad = 0
		}
		switch {
		case !st.breached && st.bad >= t.sustain():
			st.breached = true
			st.breaches++
			reason := strings.Join(reasons, ", ")
			w.Journal.Record(at, EventSLABreach, "vpn:"+t.VPN,
				fmt.Sprintf("%s for %d intervals", reason, st.bad))
			if w.OnBreach != nil {
				w.OnBreach(t.VPN, reason)
			}
		case st.breached && st.good >= t.clear():
			st.breached = false
			st.clears++
			w.Journal.Record(at, EventSLAClear, "vpn:"+t.VPN,
				fmt.Sprintf("clean for %d intervals", st.good))
			if w.OnClear != nil {
				w.OnClear(t.VPN)
			}
		}

		st.lat.Reset()
		st.delivered, st.dropped = 0, 0
	}
}

// Breached reports whether the VPN is currently in breach.
func (w *Watcher) Breached(vpn string) bool {
	if w == nil {
		return false
	}
	st, ok := w.states[vpn]
	return ok && st.breached
}

// Status freezes every target's state in target order.
func (w *Watcher) Status() []SLAStatus {
	if w == nil {
		return nil
	}
	out := make([]SLAStatus, len(w.Targets))
	for i, t := range w.Targets {
		st := w.states[t.VPN]
		out[i] = SLAStatus{VPN: t.VPN, Breached: st.breached, Breaches: st.breaches, Clears: st.clears}
	}
	return out
}
