package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"

	"mplsvpn/internal/sim"
)

// Telemetry bundles the four components of the observability plane. The
// integration layer (internal/core) owns the wiring: it resolves registry
// instruments into the data plane, routes control-plane callbacks into the
// journal, and feeds deliveries/drops to the exporter and watcher.
type Telemetry struct {
	Reg     *Registry
	Journal *Journal
	Flows   *FlowExporter
	Watcher *Watcher // nil when no SLA targets are configured

	// OnSample, when set, runs just before a snapshot is taken — the place
	// to refresh gauges that are sampled rather than streamed (link
	// utilization, control-plane totals).
	OnSample func()
}

// New assembles a telemetry plane with the given export interval and
// journal capacity (zero values select the defaults).
func New(interval sim.Time, journalCap int) *Telemetry {
	return &Telemetry{
		Reg:     NewRegistry(),
		Journal: NewJournal(journalCap),
		Flows:   NewFlowExporter(interval),
	}
}

// Snapshot is the full observability state at one virtual instant: every
// metric series, the retained flow records, the journal, and SLA status.
type Snapshot struct {
	At      sim.Time     `json:"at"`
	Metrics []Metric     `json:"metrics"`
	Flows   []FlowRecord `json:"flows"`
	Events  []Event      `json:"events"`
	SLA     []SLAStatus  `json:"sla,omitempty"`
}

// Snapshot rolls the exporter up to now, refreshes sampled gauges, and
// freezes everything. Deterministic: same seed, same bytes.
func (t *Telemetry) Snapshot(now sim.Time) *Snapshot {
	if t == nil {
		return nil
	}
	t.Flows.RollTo(now)
	if t.OnSample != nil {
		t.OnSample()
	}
	return &Snapshot{
		At:      now,
		Metrics: t.Reg.Snapshot(),
		Flows:   t.Flows.Records(),
		Events:  t.Journal.Events(),
		SLA:     t.Watcher.Status(),
	}
}

// Text renders the snapshot as the operator-facing report used by vpnctl
// -metrics and the examples.
func (s *Snapshot) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== telemetry snapshot @ %v ===\n", s.At)

	fmt.Fprintf(&b, "\n-- metrics (%d series) --\n", len(s.Metrics))
	for _, m := range s.Metrics {
		b.WriteString(m.String())
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "\n-- flow records (%d) --\n", len(s.Flows))
	for _, r := range s.Flows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "\n-- events (%d) --\n", len(s.Events))
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}

	if len(s.SLA) > 0 {
		fmt.Fprintf(&b, "\n-- sla --\n")
		for _, st := range s.SLA {
			state := "ok"
			if st.Breached {
				state = "BREACHED"
			}
			fmt.Fprintf(&b, "%-16s %-8s breaches=%d clears=%d\n", st.VPN, state, st.Breaches, st.Clears)
		}
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON with stable field and slice
// ordering.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
