package bgp

import (
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/topo"
)

var (
	rdA = addr.RouteDistinguisher{Admin: 65000, Assigned: 1}
	rdB = addr.RouteDistinguisher{Admin: 65000, Assigned: 2}
	rtA = addr.RouteTarget{Admin: 65000, Assigned: 1}
	rtB = addr.RouteTarget{Admin: 65000, Assigned: 2}
)

func route(rd addr.RouteDistinguisher, prefix string, nh uint32, label uint32, origin topo.NodeID, rts ...addr.RouteTarget) *VPNRoute {
	return &VPNRoute{
		Prefix:    addr.VPNPrefix{RD: rd, Prefix: addr.MustParsePrefix(prefix)},
		NextHop:   addr.IPv4(nh),
		Label:     packet.Label(label),
		RTs:       rts,
		LocalPref: 100,
		OriginPE:  origin,
	}
}

func TestFullMeshDistribution(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	s2 := m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	s3 := m.AddSpeaker(3, addr.MustParseIPv4("10.255.0.3"))
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
	m.Converge()
	for _, s := range []*Speaker{s2, s3} {
		r, ok := s.Best(addr.VPNPrefix{RD: rdA, Prefix: addr.MustParsePrefix("10.1.0.0/16")})
		if !ok || r.Label != 100 {
			t.Fatalf("speaker %v missing route: %v %v", s.Node, r, ok)
		}
	}
	if m.SessionCount() != 3 {
		t.Fatalf("full mesh of 3 should need 3 sessions, got %d", m.SessionCount())
	}
}

func TestOverlappingPrefixesDistinctByRD(t *testing.T) {
	// The central RFC 2547 test: two VPNs announce the same 10.0.0.0/8 and
	// both routes must coexist in every RIB.
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	s2 := m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	m.AddSpeaker(3, addr.MustParseIPv4("10.255.0.3"))
	s1.Originate(route(rdA, "10.0.0.0/8", 1, 100, 1, rtA))
	s2.Originate(route(rdB, "10.0.0.0/8", 2, 200, 2, rtB))
	m.Converge()
	s3, _ := m.Speaker(3)
	ra, oka := s3.Best(addr.VPNPrefix{RD: rdA, Prefix: addr.MustParsePrefix("10.0.0.0/8")})
	rb, okb := s3.Best(addr.VPNPrefix{RD: rdB, Prefix: addr.MustParsePrefix("10.0.0.0/8")})
	if !oka || !okb {
		t.Fatal("overlapping prefixes collided")
	}
	if ra.Label == rb.Label {
		t.Fatal("distinct VPN routes share a label unexpectedly")
	}
}

func TestBestPathSelection(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	s2 := m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	s3 := m.AddSpeaker(3, addr.MustParseIPv4("10.255.0.3"))
	// Same prefix from two PEs (multihomed site). Higher LocalPref wins.
	r1 := route(rdA, "10.1.0.0/16", 100, 100, 1, rtA)
	r1.LocalPref = 200
	r2 := route(rdA, "10.1.0.0/16", 200, 200, 2, rtA)
	s1.Originate(r1)
	s2.Originate(r2)
	m.Converge()
	best, _ := s3.Best(addr.VPNPrefix{RD: rdA, Prefix: addr.MustParsePrefix("10.1.0.0/16")})
	if best.Label != 100 {
		t.Fatalf("LocalPref not honoured: chose label %d", best.Label)
	}
	// Equal pref: shorter AS path.
	r1.LocalPref, r2.LocalPref = 100, 100
	r1.ASPathLen, r2.ASPathLen = 3, 1
	m.Converge()
	best, _ = s3.Best(addr.VPNPrefix{RD: rdA, Prefix: addr.MustParsePrefix("10.1.0.0/16")})
	if best.Label != 200 {
		t.Fatalf("AS path length not honoured: chose label %d", best.Label)
	}
	// Full tie: lowest next hop.
	r1.ASPathLen, r2.ASPathLen = 1, 1
	m.Converge()
	best, _ = s3.Best(addr.VPNPrefix{RD: rdA, Prefix: addr.MustParsePrefix("10.1.0.0/16")})
	if best.NextHop != 100 {
		t.Fatalf("next-hop tie-break not honoured: %v", best.NextHop)
	}
}

func TestImportFilterLimitsRIB(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	s2 := m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
	s1.Originate(route(rdB, "10.2.0.0/16", 1, 101, 1, rtB))
	// Speaker 2 only serves VPN A.
	s2.Filter = func(r *VPNRoute) bool { return r.HasRT(rtA) }
	m.Converge()
	if s2.RIBSize() != 1 {
		t.Fatalf("RIB size = %d, want 1 (filtered)", s2.RIBSize())
	}
	if s2.Received != 2 || s2.Retained != 1 {
		t.Fatalf("received/retained = %d/%d", s2.Received, s2.Retained)
	}
}

func TestRouteReflector(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	s3 := m.AddSpeaker(3, addr.MustParseIPv4("10.255.0.3"))
	m.UseRouteReflector(2)
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
	m.Converge()
	r, ok := s3.Best(addr.VPNPrefix{RD: rdA, Prefix: addr.MustParsePrefix("10.1.0.0/16")})
	if !ok || r.Label != 100 {
		t.Fatalf("route not reflected: %v %v", r, ok)
	}
	if m.SessionCount() != 2 {
		t.Fatalf("RR session count = %d, want 2", m.SessionCount())
	}
}

func TestRRDoesNotReflectBackToOrigin(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	m.UseRouteReflector(2)
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
	m.Converge()
	if s1.RIBSize() != 0 {
		t.Fatalf("origin received its own route back: rib=%d", s1.RIBSize())
	}
}

func TestRRBypassesOwnFilter(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	rr := m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	s3 := m.AddSpeaker(3, addr.MustParseIPv4("10.255.0.3"))
	m.UseRouteReflector(2)
	rr.Filter = func(r *VPNRoute) bool { return false } // would drop everything
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
	m.Converge()
	if _, ok := s3.Best(addr.VPNPrefix{RD: rdA, Prefix: addr.MustParsePrefix("10.1.0.0/16")}); !ok {
		t.Fatal("RR's import filter blocked reflection")
	}
}

func TestWithdraw(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	s2 := m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	r := route(rdA, "10.1.0.0/16", 1, 100, 1, rtA)
	s1.Originate(r)
	m.Converge()
	if _, ok := s2.Best(r.Prefix); !ok {
		t.Fatal("route missing before withdraw")
	}
	if !s1.WithdrawLocal(r.Prefix) {
		t.Fatal("withdraw failed")
	}
	m.Converge()
	if _, ok := s2.Best(r.Prefix); ok {
		t.Fatal("route survived withdrawal")
	}
	if s1.WithdrawLocal(r.Prefix) {
		t.Fatal("double withdraw succeeded")
	}
}

func TestOriginateReplaces(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	s2 := m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 555, 1, rtA))
	m.Converge()
	r, _ := s2.Best(addr.VPNPrefix{RD: rdA, Prefix: addr.MustParsePrefix("10.1.0.0/16")})
	if r.Label != 555 {
		t.Fatalf("re-origination did not replace: label %d", r.Label)
	}
	if s2.RIBSize() != 1 {
		t.Fatalf("duplicate export: rib=%d", s2.RIBSize())
	}
}

func TestBestRoutesSorted(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	s1.Originate(route(rdB, "10.2.0.0/16", 1, 2, 1, rtB))
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 1, 1, rtA))
	m.Converge()
	rs := s1.BestRoutes()
	if len(rs) != 2 {
		t.Fatalf("BestRoutes len = %d", len(rs))
	}
	if rs[0].Prefix.String() > rs[1].Prefix.String() {
		t.Fatal("BestRoutes not sorted")
	}
}
