// Package bgp emulates the MP-BGP machinery of RFC 2547 BGP/MPLS VPNs:
// PE routers exchange VPN-IPv4 routes (route distinguisher + prefix) with
// a VPN label piggybacked on each route — "The ISP's routing system
// distributes this information by piggybacking labels in the routing
// protocol updates" (§4) — and route-target extended communities that
// control VRF import. Sessions form either an iBGP full mesh or a route
// reflector topology; the session-count difference feeds experiment E1.
//
// Best-path selection is a deterministic subset of the BGP decision
// process: LocalPref, then AS-path length, then lowest next hop.
package bgp

import (
	"fmt"
	"sort"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
)

// VPNRoute is one VPN-IPv4 NLRI with its attributes.
type VPNRoute struct {
	Prefix  addr.VPNPrefix
	NextHop addr.IPv4 // egress PE loopback (BGP next-hop-self)
	// Label is the VPN label the egress PE allocated for this route; the
	// ingress PE pushes it under the transport label.
	Label     packet.Label
	RTs       []addr.RouteTarget
	LocalPref int // higher wins; default 100
	ASPathLen int // shorter wins
	OriginPE  topo.NodeID

	// Reflection attributes (RFC 4456), set when a route reflector stamps
	// a reflected copy. A route is stamped iff ClusterList is non-empty;
	// OriginatorID is meaningful only then. See reflect.go.
	OriginatorID topo.NodeID
	ClusterList  []uint32
}

// HasRT reports whether the route carries the given route target.
func (r *VPNRoute) HasRT(rt addr.RouteTarget) bool {
	for _, x := range r.RTs {
		if x == rt {
			return true
		}
	}
	return false
}

func (r *VPNRoute) String() string {
	return fmt.Sprintf("%s via %s label %d", r.Prefix, r.NextHop, r.Label)
}

// better reports whether a wins over b in the decision process.
func better(a, b *VPNRoute) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if a.ASPathLen != b.ASPathLen {
		return a.ASPathLen < b.ASPathLen
	}
	return a.NextHop < b.NextHop
}

// ImportFilter decides whether a speaker retains a received route. The VPN
// layer installs a filter that keeps routes whose RTs match some local
// VRF's import list — "automatic route filtering", which is what keeps
// each PE's table proportional to the VPNs it actually serves.
type ImportFilter func(*VPNRoute) bool

// Speaker is one PE's (or route reflector's) BGP state.
type Speaker struct {
	Node     topo.NodeID
	Loopback addr.IPv4

	// exports are locally originated VPN routes (from attached VRFs).
	exports []*VPNRoute
	// adjRIBIn holds every retained route per prefix.
	adjRIBIn map[addr.VPNPrefix][]*VPNRoute
	// locRIB maps prefix -> selected best route.
	locRIB map[addr.VPNPrefix]*VPNRoute

	Filter ImportFilter

	// Received counts UPDATE NLRIs offered to this speaker; Retained
	// counts those kept after filtering (E1's table-size metric).
	Received int
	Retained int

	// stale marks (prefix, origin) routes retained under graceful restart
	// pending refresh or sweep (session.go).
	stale map[addr.VPNPrefix]map[topo.NodeID]bool

	// Route-flap damping ledger (session.go): per-prefix penalty state,
	// the received-prefix set after the last Converge, and prefixes whose
	// withdrawal is pending a re-announcement.
	damp        map[addr.VPNPrefix]*dampState
	prevHad     map[addr.VPNPrefix]bool
	flapPending map[addr.VPNPrefix]bool
}

func newSpeaker(n topo.NodeID, lb addr.IPv4) *Speaker {
	return &Speaker{
		Node: n, Loopback: lb,
		adjRIBIn: make(map[addr.VPNPrefix][]*VPNRoute),
		locRIB:   make(map[addr.VPNPrefix]*VPNRoute),
	}
}

// Originate adds (or replaces) a locally originated route.
func (s *Speaker) Originate(r *VPNRoute) {
	for i, e := range s.exports {
		if e.Prefix == r.Prefix {
			s.exports[i] = r
			return
		}
	}
	s.exports = append(s.exports, r)
}

// WithdrawLocal removes a locally originated route by prefix.
func (s *Speaker) WithdrawLocal(p addr.VPNPrefix) bool {
	for i, e := range s.exports {
		if e.Prefix == p {
			s.exports = append(s.exports[:i], s.exports[i+1:]...)
			return true
		}
	}
	return false
}

// receive offers a route to the speaker. A route reflector bypasses the
// import filter: it must retain routes for VPNs it does not serve, or it
// could not reflect them.
func (s *Speaker) receive(r *VPNRoute, bypassFilter bool) {
	s.Received++
	if !bypassFilter && s.Filter != nil && !s.Filter(r) {
		return
	}
	s.Retained++
	rs := s.adjRIBIn[r.Prefix]
	for i, old := range rs {
		if old.OriginPE == r.OriginPE {
			// A re-announcement from the same origin refreshes the retained
			// route in place, clearing any graceful-restart stale mark
			// (RFC 4724 mark-and-sweep).
			rs[i] = r
			s.clearStale(r.Prefix, r.OriginPE)
			return
		}
	}
	s.adjRIBIn[r.Prefix] = append(rs, r)
}

// selectBest runs the decision process over adj-RIB-in plus local routes.
func (s *Speaker) selectBest() {
	s.locRIB = make(map[addr.VPNPrefix]*VPNRoute)
	consider := func(r *VPNRoute) {
		cur, ok := s.locRIB[r.Prefix]
		if !ok || better(r, cur) {
			s.locRIB[r.Prefix] = r
		}
	}
	for _, r := range s.exports {
		consider(r)
	}
	for p, rs := range s.adjRIBIn {
		if d, ok := s.damp[p]; ok && d.suppressed {
			continue // damped: received paths are suppressed (exports never are)
		}
		for _, r := range rs {
			consider(r)
		}
	}
}

// Best returns the selected route for a VPN prefix.
func (s *Speaker) Best(p addr.VPNPrefix) (*VPNRoute, bool) {
	r, ok := s.locRIB[p]
	return r, ok
}

// BestRoutes returns all selected routes, sorted for determinism.
func (s *Speaker) BestRoutes() []*VPNRoute {
	out := make([]*VPNRoute, 0, len(s.locRIB))
	for _, r := range s.locRIB {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Prefix.Less(out[j].Prefix)
	})
	return out
}

// RIBSize returns the number of retained routes (adj-RIB-in entries).
func (s *Speaker) RIBSize() int {
	n := 0
	for _, rs := range s.adjRIBIn {
		n += len(rs)
	}
	return n
}

// Topology selects the iBGP session layout.
type Topology int

// Session layouts.
const (
	FullMesh Topology = iota
	RouteReflector
	// Clustered partitions the PEs into reflection clusters with
	// (optionally redundant) reflectors meshed among themselves; see
	// reflect.go.
	Clustered
)

// Mesh is the set of iBGP speakers and their sessions.
type Mesh struct {
	Layout   Topology
	speakers map[topo.NodeID]*Speaker
	rr       topo.NodeID // route reflector when Layout == RouteReflector

	// Clustered-reflection state (reflect.go): the canonicalized cluster
	// set, node -> cluster indexes for both roles, and declared RT
	// interest per speaker for constrained distribution.
	clusters         []Cluster
	rrClusterIdx     map[topo.NodeID]int
	clientClusterIdx map[topo.NodeID]int
	rtInterest       map[topo.NodeID][]addr.RouteTarget

	// UpdatesSent counts route transmissions (one NLRI to one peer).
	UpdatesSent int
	// LoopPrevented counts reflected routes a receiver dropped via
	// ORIGINATOR_ID / CLUSTER_LIST loop prevention.
	LoopPrevented int

	// Session machinery (session.go): per-node session state, the virtual
	// clock for damping decay, the damping thresholds, and the suppressed
	// prefixes pending journaling.
	peerState       map[topo.NodeID]PeerState
	clock           func() sim.Time
	damping         DampingConfig
	newlySuppressed []addr.VPNPrefix

	// Survivability counters (session.go).
	SessionFlaps      int
	StaleRetained     int
	StaleSwept        int
	WithdrawalsSent   int
	RouteSuppressions int
	RouteReuses       int
}

// NewMesh creates an empty full-mesh iBGP domain.
func NewMesh() *Mesh {
	return &Mesh{Layout: FullMesh, speakers: make(map[topo.NodeID]*Speaker), rr: topo.Invalid}
}

// AddSpeaker registers a PE (or RR) with its loopback.
func (m *Mesh) AddSpeaker(n topo.NodeID, loopback addr.IPv4) *Speaker {
	s := newSpeaker(n, loopback)
	m.speakers[n] = s
	return s
}

// Speaker returns the speaker at node n.
func (m *Mesh) Speaker(n topo.NodeID) (*Speaker, bool) {
	s, ok := m.speakers[n]
	return s, ok
}

// UseRouteReflector switches the session layout: all speakers peer only
// with rr, which reflects routes between them.
func (m *Mesh) UseRouteReflector(rr topo.NodeID) {
	m.Layout = RouteReflector
	m.rr = rr
}

// SessionCount returns the number of iBGP sessions the layout needs —
// the §2.1 scaling story applied to the control plane: full mesh is
// n(n-1)/2, a single route reflector is n-1, and clustered reflection is
// one session per (client, own-cluster RR) pair plus the reflector mesh.
func (m *Mesh) SessionCount() int {
	n := len(m.speakers)
	switch m.Layout {
	case RouteReflector:
		return n - 1
	case Clustered:
		sessions, rrs := 0, 0
		for _, c := range m.clusters {
			sessions += len(c.Clients) * len(c.RRs)
			rrs += len(c.RRs)
		}
		return sessions + rrs*(rrs-1)/2
	}
	return n * (n - 1) / 2
}

func (m *Mesh) sortedIDs() []topo.NodeID {
	ids := make([]topo.NodeID, 0, len(m.speakers))
	for n := range m.speakers {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Converge redistributes all originated routes over the session topology
// and reruns best-path selection everywhere. It is a full recomputation:
// callers re-converge after originating or withdrawing routes, mirroring
// the steady state a real incremental protocol reaches.
//
// Sessions gate the exchange: a Down or Restarting speaker neither sends
// nor receives (its RIB stays empty until re-establishment), and Up
// speakers keep stale-retained routes across the round so a graceful
// restart can refresh them in place.
func (m *Mesh) Converge() {
	for _, s := range m.speakers {
		if m.StateOf(s.Node) == PeerUp {
			s.clearAdjRIBKeepStale()
		} else {
			s.adjRIBIn = make(map[addr.VPNPrefix][]*VPNRoute)
			s.locRIB = make(map[addr.VPNPrefix]*VPNRoute)
			s.stale = nil
		}
		s.Received = 0
		s.Retained = 0
	}
	ids := m.sortedIDs()
	switch m.Layout {
	case FullMesh:
		for _, from := range ids {
			if m.StateOf(from) != PeerUp {
				continue
			}
			sf := m.speakers[from]
			for _, to := range ids {
				if to == from || m.StateOf(to) != PeerUp {
					continue
				}
				for _, r := range sf.exports {
					m.speakers[to].receive(r, false)
					m.UpdatesSent++
				}
			}
		}
	case RouteReflector:
		rr, ok := m.speakers[m.rr]
		if !ok {
			panic("bgp: route reflector is not a speaker")
		}
		if m.StateOf(m.rr) != PeerUp {
			// The reflector is down: no redistribution at all. Clients keep
			// whatever graceful restart preserved.
			break
		}
		// Clients -> RR, bypassing any import filter on the RR.
		for _, from := range ids {
			if from == m.rr || m.StateOf(from) != PeerUp {
				continue
			}
			for _, r := range m.speakers[from].exports {
				rr.receive(r, true)
				m.UpdatesSent++
			}
		}
		// RR reflects everything (its own exports included) to clients.
		var all []*VPNRoute
		all = append(all, rr.exports...)
		for _, p := range rr.sortedPrefixes() {
			all = append(all, rr.adjRIBIn[p]...)
		}
		for _, to := range ids {
			if to == m.rr || m.StateOf(to) != PeerUp {
				continue
			}
			for _, r := range all {
				if r.OriginPE == to {
					continue // do not reflect a route back to its origin
				}
				m.speakers[to].receive(r, false)
				m.UpdatesSent++
			}
		}
	case Clustered:
		m.convergeClustered()
	}
	now := m.now()
	for _, id := range ids {
		if m.StateOf(id) == PeerUp {
			m.speakers[id].updateDamping(m, now)
		}
	}
	for _, s := range m.speakers {
		s.selectBest()
	}
}

// sortedPrefixes lists adj-RIB-in prefixes in deterministic order.
func (s *Speaker) sortedPrefixes() []addr.VPNPrefix {
	out := make([]addr.VPNPrefix, 0, len(s.adjRIBIn))
	for p := range s.adjRIBIn {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
