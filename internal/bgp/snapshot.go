package bgp

import (
	"fmt"
	"sort"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/snapshot"
	"mplsvpn/internal/topo"
)

func saveRoute(w *snapshot.Writer, r *VPNRoute) {
	addr.SaveVPNPrefix(w, r.Prefix)
	w.U64(uint64(r.NextHop))
	w.U64(uint64(r.Label))
	w.U64(uint64(len(r.RTs)))
	for _, rt := range r.RTs {
		addr.SaveRT(w, rt)
	}
	w.I64(int64(r.LocalPref))
	w.I64(int64(r.ASPathLen))
	w.I64(int64(r.OriginPE))
	w.I64(int64(r.OriginatorID))
	w.U64(uint64(len(r.ClusterList)))
	for _, c := range r.ClusterList {
		w.U64(uint64(c))
	}
}

func loadRoute(r *snapshot.Reader) *VPNRoute {
	v := &VPNRoute{
		Prefix:  addr.LoadVPNPrefix(r),
		NextHop: addr.IPv4(uint32(r.U64())),
		Label:   packet.Label(r.U64()),
	}
	n := r.Count(4)
	for i := 0; i < n; i++ {
		v.RTs = append(v.RTs, addr.LoadRT(r))
	}
	v.LocalPref = int(r.I64())
	v.ASPathLen = int(r.I64())
	v.OriginPE = topo.NodeID(r.I64())
	v.OriginatorID = topo.NodeID(r.I64())
	nc := r.Count(8)
	for i := 0; i < nc; i++ {
		v.ClusterList = append(v.ClusterList, uint32(r.U64()))
	}
	return v
}

func sortedVPNPrefixes[V any](m map[addr.VPNPrefix]V) []addr.VPNPrefix {
	out := make([]addr.VPNPrefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// saveState serializes one speaker: exports and adj-RIB-in by value (slice
// order preserved — the decision process keeps the first route on full
// ties, so order is semantics), graceful-restart stale marks, and the
// damping ledger. loc-RIB is recomputed at load.
func (s *Speaker) saveState(w *snapshot.Writer) {
	w.I64(int64(s.Received))
	w.I64(int64(s.Retained))
	w.U64(uint64(len(s.exports)))
	for _, r := range s.exports {
		saveRoute(w, r)
	}
	prefixes := sortedVPNPrefixes(s.adjRIBIn)
	w.U64(uint64(len(prefixes)))
	for _, p := range prefixes {
		rs := s.adjRIBIn[p]
		addr.SaveVPNPrefix(w, p)
		w.U64(uint64(len(rs)))
		for _, r := range rs {
			saveRoute(w, r)
		}
	}
	stale := sortedVPNPrefixes(s.stale)
	w.U64(uint64(len(stale)))
	for _, p := range stale {
		addr.SaveVPNPrefix(w, p)
		origins := make([]topo.NodeID, 0, len(s.stale[p]))
		for o := range s.stale[p] {
			origins = append(origins, o)
		}
		sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
		w.U64(uint64(len(origins)))
		for _, o := range origins {
			w.I64(int64(o))
		}
	}
	damp := sortedVPNPrefixes(s.damp)
	w.U64(uint64(len(damp)))
	for _, p := range damp {
		d := s.damp[p]
		addr.SaveVPNPrefix(w, p)
		w.F64(d.penalty)
		w.I64(int64(d.last))
		w.Bool(d.suppressed)
	}
	prev := sortedVPNPrefixes(s.prevHad)
	w.U64(uint64(len(prev)))
	for _, p := range prev {
		addr.SaveVPNPrefix(w, p)
	}
	flap := sortedVPNPrefixes(s.flapPending)
	w.U64(uint64(len(flap)))
	for _, p := range flap {
		addr.SaveVPNPrefix(w, p)
	}
}

func (s *Speaker) loadState(r *snapshot.Reader) error {
	s.Received = int(r.I64())
	s.Retained = int(r.I64())
	ne := r.Count(8)
	s.exports = make([]*VPNRoute, 0, ne)
	for i := 0; i < ne; i++ {
		s.exports = append(s.exports, loadRoute(r))
	}
	np := r.Count(8)
	s.adjRIBIn = make(map[addr.VPNPrefix][]*VPNRoute, np)
	for i := 0; i < np; i++ {
		p := addr.LoadVPNPrefix(r)
		nr := r.Count(8)
		rs := make([]*VPNRoute, 0, nr)
		for j := 0; j < nr; j++ {
			rs = append(rs, loadRoute(r))
		}
		if r.Err() != nil {
			return r.Err()
		}
		s.adjRIBIn[p] = rs
	}
	ns := r.Count(4)
	s.stale = nil
	if ns > 0 {
		s.stale = make(map[addr.VPNPrefix]map[topo.NodeID]bool, ns)
	}
	for i := 0; i < ns; i++ {
		p := addr.LoadVPNPrefix(r)
		no := r.Count(1)
		origins := make(map[topo.NodeID]bool, no)
		for j := 0; j < no; j++ {
			origins[topo.NodeID(r.I64())] = true
		}
		if r.Err() != nil {
			return r.Err()
		}
		s.stale[p] = origins
	}
	nd := r.Count(12)
	s.damp = nil
	if nd > 0 {
		s.damp = make(map[addr.VPNPrefix]*dampState, nd)
	}
	for i := 0; i < nd; i++ {
		p := addr.LoadVPNPrefix(r)
		d := &dampState{penalty: r.F64(), last: sim.Time(r.I64()), suppressed: r.Bool()}
		if r.Err() != nil {
			return r.Err()
		}
		s.damp[p] = d
	}
	nprev := r.Count(3)
	s.prevHad = nil
	if nprev > 0 {
		s.prevHad = make(map[addr.VPNPrefix]bool, nprev)
	}
	for i := 0; i < nprev; i++ {
		s.prevHad[addr.LoadVPNPrefix(r)] = true
	}
	nf := r.Count(3)
	s.flapPending = nil
	if nf > 0 {
		s.flapPending = make(map[addr.VPNPrefix]bool, nf)
	}
	for i := 0; i < nf; i++ {
		s.flapPending[addr.LoadVPNPrefix(r)] = true
	}
	return r.Err()
}

// SaveState serializes the mesh: per-speaker RIB and ledger state, session
// states, and counters. Layout, clock, and damping thresholds are scenario
// configuration, rebuilt rather than serialized.
func (m *Mesh) SaveState(w *snapshot.Writer) {
	w.I64(int64(m.UpdatesSent))
	w.I64(int64(m.SessionFlaps))
	w.I64(int64(m.StaleRetained))
	w.I64(int64(m.StaleSwept))
	w.I64(int64(m.WithdrawalsSent))
	w.I64(int64(m.RouteSuppressions))
	w.I64(int64(m.RouteReuses))
	w.I64(int64(m.LoopPrevented))
	nodes := make([]topo.NodeID, 0, len(m.peerState))
	for n := range m.peerState {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	w.U64(uint64(len(nodes)))
	for _, n := range nodes {
		w.I64(int64(n))
		w.I64(int64(m.peerState[n]))
	}
	w.U64(uint64(len(m.newlySuppressed)))
	for _, p := range m.newlySuppressed {
		addr.SaveVPNPrefix(w, p)
	}
	ids := m.sortedIDs()
	w.U64(uint64(len(ids)))
	for _, id := range ids {
		w.I64(int64(id))
		m.speakers[id].saveState(w)
	}
}

// LoadState replaces the mesh's dynamic state and reruns best-path
// selection everywhere (loc-RIB is derived, never serialized).
func (m *Mesh) LoadState(r *snapshot.Reader) error {
	m.UpdatesSent = int(r.I64())
	m.SessionFlaps = int(r.I64())
	m.StaleRetained = int(r.I64())
	m.StaleSwept = int(r.I64())
	m.WithdrawalsSent = int(r.I64())
	m.RouteSuppressions = int(r.I64())
	m.RouteReuses = int(r.I64())
	m.LoopPrevented = int(r.I64())
	nst := r.Count(2)
	m.peerState = nil
	if nst > 0 {
		m.peerState = make(map[topo.NodeID]PeerState, nst)
	}
	for i := 0; i < nst; i++ {
		n := topo.NodeID(r.I64())
		m.peerState[n] = PeerState(r.I64())
	}
	nsup := r.Count(3)
	m.newlySuppressed = nil
	for i := 0; i < nsup; i++ {
		m.newlySuppressed = append(m.newlySuppressed, addr.LoadVPNPrefix(r))
	}
	nsp := r.Count(3)
	for i := 0; i < nsp; i++ {
		id := topo.NodeID(r.I64())
		s, ok := m.speakers[id]
		if !ok {
			return fmt.Errorf("%w: BGP speaker %d not in scenario", snapshot.ErrMismatch, id)
		}
		if err := s.loadState(r); err != nil {
			return err
		}
	}
	for _, s := range m.speakers {
		s.selectBest()
	}
	return r.Err()
}
