package bgp

import (
	"fmt"
	"math/rand"
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
)

func vpnRT(v int) addr.RouteTarget { return addr.RouteTarget{Admin: 65000, Assigned: uint32(v)} }
func vpnRD(v int) addr.RouteDistinguisher {
	return addr.RouteDistinguisher{Admin: 65000, Assigned: uint32(v)}
}

// TestClusteredReflectionBasics: stamping, RT-constrained delivery, loop
// prevention among redundant reflectors, and the session-count formula.
func TestClusteredReflectionBasics(t *testing.T) {
	m := NewMesh()
	// PEs 1..4, reflectors 100..103; two clusters of two RRs each.
	for _, n := range []topo.NodeID{1, 2, 3, 4, 100, 101, 102, 103} {
		m.AddSpeaker(n, Loopback(n))
	}
	m.UseClusters([]Cluster{
		{ID: 10, RRs: []topo.NodeID{100, 101}, Clients: []topo.NodeID{1, 2}},
		{ID: 20, RRs: []topo.NodeID{102, 103}, Clients: []topo.NodeID{3, 4}},
	})
	if got, want := m.SessionCount(), 2*2+2*2+4*3/2; got != want {
		t.Fatalf("SessionCount = %d, want %d", got, want)
	}

	// PE 1 and PE 3 serve VPN 1; PE 2 and PE 4 serve VPN 2.
	vrf := map[topo.NodeID]int{1: 1, 2: 2, 3: 1, 4: 2}
	for pe, v := range vrf {
		s, _ := m.Speaker(pe)
		rt := vpnRT(v)
		s.Filter = func(r *VPNRoute) bool { return r.HasRT(rt) }
		m.SetRTInterest(pe, []addr.RouteTarget{rt})
		s.Originate(&VPNRoute{
			Prefix:    addr.VPNPrefix{RD: vpnRD(v), Prefix: addr.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", v, pe))},
			NextHop:   Loopback(pe),
			Label:     packet.Label(1000 + pe),
			RTs:       []addr.RouteTarget{rt},
			LocalPref: 100,
			OriginPE:  pe,
		})
	}
	m.Converge()

	// Cross-cluster VPN-1 route must arrive at PE 1 stamped with its
	// originator and origin cluster.
	s1, _ := m.Speaker(1)
	p3 := addr.VPNPrefix{RD: vpnRD(1), Prefix: addr.MustParsePrefix("10.1.3.0/24")}
	r, ok := s1.Best(p3)
	if !ok {
		t.Fatal("PE1 missing PE3's VPN-1 route")
	}
	if r.OriginatorID != 3 || len(r.ClusterList) != 1 || r.ClusterList[0] != 20 {
		t.Fatalf("bad stamping: originator %d cluster list %v", r.OriginatorID, r.ClusterList)
	}
	// RT-constrained distribution: PE1 must never even be offered VPN-2
	// routes (the reflector filters sender-side), so Received counts only
	// VPN-1 traffic: one local cluster sibling is absent (PE2 is VPN-2),
	// so PE1 is offered PE3's route from each of its two reflectors.
	if s1.Received != 2 {
		t.Fatalf("PE1 Received = %d, want 2 (RT-constrained)", s1.Received)
	}
	if _, ok := s1.Best(addr.VPNPrefix{RD: vpnRD(2), Prefix: addr.MustParsePrefix("10.2.2.0/24")}); ok {
		t.Fatal("PE1 holds a VPN-2 route")
	}
	// Redundant reflectors bounce each other's stamped copies.
	if m.LoopPrevented == 0 {
		t.Fatal("no loop prevention exercised with redundant reflectors")
	}
}

// churnRig drives a clustered mesh and a full-mesh twin through identical
// event sequences; PEs' loc-RIBs must stay identical throughout.
type churnRig struct {
	t      *testing.T
	seed   int64
	full   *Mesh
	clus   *Mesh
	pes    []topo.NodeID
	rrs    []topo.NodeID
	byPE   map[topo.NodeID][]*VPNRoute // identical exports fed to both meshes
	now    sim.Time
	rounds int
}

func Loopback(n topo.NodeID) addr.IPv4 {
	return addr.IPv4(uint32(addr.MustParseIPv4("10.255.0.0")) + uint32(n))
}

func newChurnRig(t *testing.T, seed int64) *churnRig {
	rig := &churnRig{t: t, seed: seed, full: NewMesh(), clus: NewMesh(), byPE: map[topo.NodeID][]*VPNRoute{}}
	rng := rand.New(rand.NewSource(seed))

	const nPE, nVPN = 12, 4
	for pe := topo.NodeID(0); pe < nPE; pe++ {
		rig.pes = append(rig.pes, pe)
	}
	rig.rrs = []topo.NodeID{100, 101, 102, 103}
	for _, n := range append(append([]topo.NodeID{}, rig.pes...), rig.rrs...) {
		rig.full.AddSpeaker(n, Loopback(n))
		rig.clus.AddSpeaker(n, Loopback(n))
	}
	rig.clus.UseClusters([]Cluster{
		{ID: 1, RRs: []topo.NodeID{100, 101}, Clients: rig.pes[:6]},
		{ID: 2, RRs: []topo.NodeID{102, 103}, Clients: rig.pes[6:]},
	})

	damp := DampingConfig{Penalty: 1000, Suppress: 2000, Reuse: 750, HalfLife: 10 * sim.Second}
	for _, m := range []*Mesh{rig.full, rig.clus} {
		m.SetClock(func() sim.Time { return rig.now })
		m.SetDamping(damp)
	}

	for _, pe := range rig.pes {
		vpns := []int{int(pe) % nVPN, (int(pe) + 1) % nVPN}
		var rts []addr.RouteTarget
		for _, v := range vpns {
			rts = append(rts, vpnRT(v))
		}
		for _, m := range []*Mesh{rig.full, rig.clus} {
			s, _ := m.Speaker(pe)
			mine := append([]addr.RouteTarget(nil), rts...)
			s.Filter = func(r *VPNRoute) bool {
				for _, rt := range mine {
					if r.HasRT(rt) {
						return true
					}
				}
				return false
			}
		}
		rig.clus.SetRTInterest(pe, rts)
		for _, v := range vpns {
			for i := 0; i < 2; i++ {
				r := &VPNRoute{
					Prefix:    addr.VPNPrefix{RD: vpnRD(v), Prefix: addr.MustParsePrefix(fmt.Sprintf("10.%d.%d.%d/32", v, pe, i))},
					NextHop:   Loopback(pe),
					Label:     packet.Label(100 + rng.Intn(900)),
					RTs:       []addr.RouteTarget{vpnRT(v)},
					LocalPref: 100 + 5*rng.Intn(3),
					ASPathLen: 1 + rng.Intn(3),
					OriginPE:  pe,
				}
				rig.byPE[pe] = append(rig.byPE[pe], r)
			}
			// A contended anycast prefix per VPN: every serving PE exports
			// it, so best-path selection has real work to do.
			r := &VPNRoute{
				Prefix:    addr.VPNPrefix{RD: vpnRD(v), Prefix: addr.MustParsePrefix(fmt.Sprintf("10.%d.255.0/24", v))},
				NextHop:   Loopback(pe),
				Label:     packet.Label(100 + rng.Intn(900)),
				RTs:       []addr.RouteTarget{vpnRT(v)},
				LocalPref: 100 + 5*rng.Intn(3),
				ASPathLen: 1 + rng.Intn(3),
				OriginPE:  pe,
			}
			rig.byPE[pe] = append(rig.byPE[pe], r)
		}
		for _, r := range rig.byPE[pe] {
			fs, _ := rig.full.Speaker(pe)
			cs, _ := rig.clus.Speaker(pe)
			fs.Originate(r)
			cs.Originate(r)
		}
	}
	rig.converge()
	return rig
}

func (rig *churnRig) converge() {
	rig.full.Converge()
	rig.clus.Converge()
	rig.compare()
}

// compare asserts every PE's loc-RIB and stale ledger agree between the
// two layouts on the attributes forwarding depends on.
func (rig *churnRig) compare() {
	rig.t.Helper()
	rig.rounds++
	for _, pe := range rig.pes {
		fs, _ := rig.full.Speaker(pe)
		cs, _ := rig.clus.Speaker(pe)
		fb, cb := fs.BestRoutes(), cs.BestRoutes()
		if len(fb) != len(cb) {
			rig.t.Fatalf("seed %d round %d PE %d: loc-RIB size full=%d clustered=%d",
				rig.seed, rig.rounds, pe, len(fb), len(cb))
		}
		for i := range fb {
			f, c := fb[i], cb[i]
			if f.Prefix != c.Prefix || f.NextHop != c.NextHop || f.Label != c.Label ||
				f.LocalPref != c.LocalPref || f.ASPathLen != c.ASPathLen || f.OriginPE != c.OriginPE {
				rig.t.Fatalf("seed %d round %d PE %d: best-path divergence\n full:      %+v\n clustered: %+v",
					rig.seed, rig.rounds, pe, f, c)
			}
		}
		if fs.StaleRoutes() != cs.StaleRoutes() {
			rig.t.Fatalf("seed %d round %d PE %d: stale full=%d clustered=%d",
				rig.seed, rig.rounds, pe, fs.StaleRoutes(), cs.StaleRoutes())
		}
	}
}

// TestClusteredEquivalenceUnderChurn is the reflection oracle: across
// seeded random churn — PE session flaps (graceful and hard, sometimes
// with a config change while down), single-reflector outages, prefix
// flaps driving the damping ledger, and decay epochs — every PE's
// selected best paths in the clustered mesh must equal the full-mesh
// oracle after every convergence.
func TestClusteredEquivalenceUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn oracle is the long reflection proof; test-race and verify-controlplane run it explicitly")
	}
	totalSuppressed := 0
	for seed := int64(1); seed <= 3; seed++ {
		rig := newChurnRig(t, seed)
		rng := rand.New(rand.NewSource(seed * 7919))
		both := []*Mesh{rig.full, rig.clus}
		for ev := 0; ev < 40; ev++ {
			switch rng.Intn(4) {
			case 0: // PE session flap
				pe := rig.pes[rng.Intn(len(rig.pes))]
				graceful := rng.Intn(2) == 0
				for _, m := range both {
					m.SessionDown(pe, graceful)
				}
				rig.converge()
				var dropped *VPNRoute
				if graceful && rng.Intn(2) == 0 && len(rig.byPE[pe]) > 1 {
					// Config change during restart: one prefix is gone when
					// the session returns, so the sweep has work to do.
					i := rng.Intn(len(rig.byPE[pe]))
					dropped = rig.byPE[pe][i]
					rig.byPE[pe] = append(rig.byPE[pe][:i], rig.byPE[pe][i+1:]...)
					for _, m := range both {
						s, _ := m.Speaker(pe)
						s.WithdrawLocal(dropped.Prefix)
					}
				}
				for _, m := range both {
					m.SessionUp(pe)
				}
				rig.converge()
				for _, m := range both {
					m.SweepStale(pe)
				}
				rig.compare()
				if dropped != nil { // restore for later rounds
					rig.byPE[pe] = append(rig.byPE[pe], dropped)
					for _, m := range both {
						s, _ := m.Speaker(pe)
						s.Originate(dropped)
					}
					rig.converge()
				}
			case 1: // single-reflector outage: redundancy must hide it
				rr := rig.rrs[rng.Intn(len(rig.rrs))]
				rig.clus.SessionDown(rr, rng.Intn(2) == 0)
				rig.converge()
				rig.clus.SessionUp(rr)
				rig.converge()
				rig.clus.SweepStale(rr)
				rig.compare()
			case 2: // prefix flap: withdraw, converge, re-announce
				pe := rig.pes[rng.Intn(len(rig.pes))]
				r := rig.byPE[pe][rng.Intn(len(rig.byPE[pe]))]
				for _, m := range both {
					s, _ := m.Speaker(pe)
					s.WithdrawLocal(r.Prefix)
				}
				rig.converge()
				for _, m := range both {
					s, _ := m.Speaker(pe)
					s.Originate(r)
				}
				rig.converge()
			default: // time passes; damping decays and reuses
				rig.now += sim.Time(1+rng.Intn(8)) * sim.Second
				for _, m := range both {
					m.DecayDamping(rig.now)
				}
				rig.compare()
			}
		}
		if rig.clus.LoopPrevented == 0 {
			t.Fatalf("seed %d: loop prevention never exercised", seed)
		}
		if rig.clus.RouteSuppressions != rig.full.RouteSuppressions {
			t.Fatalf("seed %d: suppression divergence (full %d, clustered %d)",
				seed, rig.full.RouteSuppressions, rig.clus.RouteSuppressions)
		}
		totalSuppressed += rig.clus.RouteSuppressions
		if rig.clus.SessionCount() >= rig.full.SessionCount() {
			t.Fatalf("seed %d: clustered sessions %d not below full mesh %d",
				seed, rig.clus.SessionCount(), rig.full.SessionCount())
		}
	}
	if totalSuppressed == 0 {
		t.Fatal("damping never suppressed across any seed")
	}
}

// TestRTConstrainedUpdateVolume: declaring interests must cut update
// volume without changing any PE's selected routes.
func TestRTConstrainedUpdateVolume(t *testing.T) {
	build := func(constrained bool) *Mesh {
		m := NewMesh()
		var pes []topo.NodeID
		for pe := topo.NodeID(0); pe < 8; pe++ {
			pes = append(pes, pe)
			m.AddSpeaker(pe, Loopback(pe))
		}
		m.AddSpeaker(100, Loopback(100))
		m.AddSpeaker(101, Loopback(101))
		m.UseClusters([]Cluster{
			{ID: 1, RRs: []topo.NodeID{100}, Clients: pes[:4]},
			{ID: 2, RRs: []topo.NodeID{101}, Clients: pes[4:]},
		})
		for _, pe := range pes {
			v := int(pe) % 4
			rt := vpnRT(v)
			s, _ := m.Speaker(pe)
			s.Filter = func(r *VPNRoute) bool { return r.HasRT(rt) }
			if constrained {
				m.SetRTInterest(pe, []addr.RouteTarget{rt})
			}
			s.Originate(&VPNRoute{
				Prefix:    addr.VPNPrefix{RD: vpnRD(v), Prefix: addr.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", v, pe))},
				NextHop:   Loopback(pe),
				Label:     packet.Label(500 + pe),
				RTs:       []addr.RouteTarget{rt},
				LocalPref: 100,
				OriginPE:  pe,
			})
		}
		m.Converge()
		return m
	}
	open := build(false)
	tight := build(true)
	if tight.UpdatesSent >= open.UpdatesSent {
		t.Fatalf("RT constraint did not cut updates: %d vs %d", tight.UpdatesSent, open.UpdatesSent)
	}
	for pe := topo.NodeID(0); pe < 8; pe++ {
		so, _ := open.Speaker(pe)
		st, _ := tight.Speaker(pe)
		ro, rt := so.BestRoutes(), st.BestRoutes()
		if len(ro) != len(rt) {
			t.Fatalf("PE %d: loc-RIB size open=%d constrained=%d", pe, len(ro), len(rt))
		}
		for i := range ro {
			if ro[i].Prefix != rt[i].Prefix || ro[i].NextHop != rt[i].NextHop {
				t.Fatalf("PE %d: route divergence %v vs %v", pe, ro[i], rt[i])
			}
		}
	}
}
