package bgp

import (
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/sim"
)

func vp(rd addr.RouteDistinguisher, prefix string) addr.VPNPrefix {
	return addr.VPNPrefix{RD: rd, Prefix: addr.MustParsePrefix(prefix)}
}

// threeMesh builds a converged full mesh where speaker 1 exports one route.
func threeMesh(t *testing.T) (*Mesh, *Speaker, *Speaker, *Speaker) {
	t.Helper()
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	s2 := m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	s3 := m.AddSpeaker(3, addr.MustParseIPv4("10.255.0.3"))
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
	s2.Originate(route(rdA, "10.2.0.0/16", 2, 200, 2, rtA))
	m.Converge()
	return m, s1, s2, s3
}

func TestSessionDownWithdrawsWithoutGR(t *testing.T) {
	m, _, s2, s3 := threeMesh(t)
	impacts := m.SessionDown(1, false)
	if len(impacts) != 2 {
		t.Fatalf("impacts = %+v, want both survivors", impacts)
	}
	for _, im := range impacts {
		if im.Withdrawn != 1 || im.Stale != 0 {
			t.Fatalf("impact %+v, want 1 withdrawn 0 stale", im)
		}
	}
	for _, s := range []*Speaker{s2, s3} {
		if _, ok := s.Best(vp(rdA, "10.1.0.0/16")); ok {
			t.Fatalf("speaker %v still has the withdrawn route", s.Node)
		}
	}
	if m.WithdrawalsSent != 2 || m.SessionFlaps != 1 {
		t.Fatalf("withdrawals=%d flaps=%d", m.WithdrawalsSent, m.SessionFlaps)
	}
}

func TestGracefulRestartRetainsStale(t *testing.T) {
	m, _, s2, s3 := threeMesh(t)
	impacts := m.SessionDown(1, true)
	for _, im := range impacts {
		if im.Stale != 1 || im.Withdrawn != 0 {
			t.Fatalf("impact %+v, want 1 stale 0 withdrawn", im)
		}
	}
	// Forwarding state preserved: best paths still point at the dead box.
	for _, s := range []*Speaker{s2, s3} {
		if _, ok := s.Best(vp(rdA, "10.1.0.0/16")); !ok {
			t.Fatalf("speaker %v lost the stale route", s.Node)
		}
	}
	if m.StaleCount() != 2 || m.StaleRetained != 2 || m.WithdrawalsSent != 0 {
		t.Fatalf("stale=%d retained=%d withdrawals=%d",
			m.StaleCount(), m.StaleRetained, m.WithdrawalsSent)
	}
	// A Converge while the box is down must not resurrect or drop anything.
	m.Converge()
	if m.StaleCount() != 2 {
		t.Fatalf("stale after converge = %d, want 2", m.StaleCount())
	}
	if _, ok := s2.Best(vp(rdA, "10.1.0.0/16")); !ok {
		t.Fatal("converge dropped the stale route")
	}
}

func TestGracefulRestartRefreshSweep(t *testing.T) {
	m, s1, s2, _ := threeMesh(t)
	// Give speaker 1 a second export that will NOT return after restart.
	s1.Originate(route(rdA, "10.9.0.0/16", 1, 900, 1, rtA))
	m.Converge()
	m.SessionDown(1, true)
	if m.StaleCount() != 4 {
		t.Fatalf("stale = %d, want 4 (2 prefixes x 2 peers)", m.StaleCount())
	}
	// The box comes back having lost one export (config change during the
	// outage): the survivor refreshes, the orphan is swept.
	s1.WithdrawLocal(vp(rdA, "10.9.0.0/16"))
	m.SessionUp(1)
	m.Converge()
	swept, impacts := m.SweepStale(1)
	if swept != 2 {
		t.Fatalf("swept = %d, want 2", swept)
	}
	for _, im := range impacts {
		if im.Withdrawn != 1 {
			t.Fatalf("sweep impact %+v", im)
		}
	}
	if _, ok := s2.Best(vp(rdA, "10.1.0.0/16")); !ok {
		t.Fatal("refreshed route missing after sweep")
	}
	if _, ok := s2.Best(vp(rdA, "10.9.0.0/16")); ok {
		t.Fatal("swept route still selected")
	}
	if m.StaleCount() != 0 {
		t.Fatalf("stale after sweep = %d", m.StaleCount())
	}
}

func TestGracefulRestartTimerExpirySweepsAll(t *testing.T) {
	m, _, s2, _ := threeMesh(t)
	m.SessionDown(1, true)
	// Timer expiry without re-establishment: everything stale goes.
	swept, _ := m.SweepStale(1)
	if swept != 2 {
		t.Fatalf("swept = %d, want 2", swept)
	}
	if _, ok := s2.Best(vp(rdA, "10.1.0.0/16")); ok {
		t.Fatal("expired stale route still selected")
	}
	if m.WithdrawalsSent != 2 || m.StaleSwept != 2 {
		t.Fatalf("withdrawals=%d swept=%d", m.WithdrawalsSent, m.StaleSwept)
	}
}

func TestDoubleRestartWithinWindow(t *testing.T) {
	m, _, s2, _ := threeMesh(t)
	// First crash, graceful.
	m.SessionDown(1, true)
	// Second crash before the first restart completed: stale marks must
	// not double-count, and the state machine stays consistent.
	m.SessionDown(1, true)
	if m.StaleRetained != 2 || m.StaleCount() != 2 {
		t.Fatalf("retained=%d stale=%d after double down, want 2/2",
			m.StaleRetained, m.StaleCount())
	}
	if m.SessionFlaps != 2 {
		t.Fatalf("flaps = %d, want 2", m.SessionFlaps)
	}
	m.SessionUp(1)
	m.Converge()
	swept, _ := m.SweepStale(1)
	if swept != 0 {
		t.Fatalf("swept = %d after full refresh, want 0", swept)
	}
	if r, ok := s2.Best(vp(rdA, "10.1.0.0/16")); !ok || r.Label != 100 {
		t.Fatalf("route not refreshed after double restart: %v %v", r, ok)
	}
}

func TestRRSessionLossSeversClients(t *testing.T) {
	m := NewMesh()
	s1 := m.AddSpeaker(1, addr.MustParseIPv4("10.255.0.1"))
	m.AddSpeaker(2, addr.MustParseIPv4("10.255.0.2"))
	s3 := m.AddSpeaker(3, addr.MustParseIPv4("10.255.0.3"))
	m.UseRouteReflector(2)
	s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
	m.Converge()
	if _, ok := s3.Best(vp(rdA, "10.1.0.0/16")); !ok {
		t.Fatal("reflection failed before the flap")
	}
	// Losing the RR gracefully: clients keep everything reflected, stale.
	impacts := m.SessionDown(2, true)
	found := false
	for _, im := range impacts {
		if im.Peer == 3 && im.Stale == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("client 3 impact missing: %+v", impacts)
	}
	if _, ok := s3.Best(vp(rdA, "10.1.0.0/16")); !ok {
		t.Fatal("client dropped reflected route during RR graceful restart")
	}
}

// clockAt builds a settable virtual clock for damping tests.
func clockAt(t *sim.Time) func() sim.Time { return func() sim.Time { return *t } }

func TestDampingSuppressAndReuse(t *testing.T) {
	m, s1, s2, _ := threeMesh(t)
	var now sim.Time
	m.SetClock(clockAt(&now))
	m.SetDamping(DampingConfig{
		Penalty: 1000, Suppress: 2000, Reuse: 750, HalfLife: sim.Second,
	})
	p := vp(rdA, "10.1.0.0/16")

	flap := func() {
		s1.WithdrawLocal(p)
		m.Converge()
		s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
		m.Converge()
	}
	flap()
	if m.Suppressed(2, p) {
		t.Fatal("suppressed after one flap (penalty 1000 < 2000)")
	}
	if _, ok := s2.Best(p); !ok {
		t.Fatal("route missing after first flap")
	}
	flap()
	if !m.Suppressed(2, p) {
		t.Fatal("not suppressed after two flaps (penalty 2000)")
	}
	if _, ok := s2.Best(p); ok {
		t.Fatal("suppressed route still selected")
	}
	if got := m.TakeSuppressed(); len(got) != 1 || got[0] != p {
		t.Fatalf("TakeSuppressed = %v", got)
	}
	if m.RouteSuppressions == 0 {
		t.Fatal("suppression not counted")
	}
	// Exports are never damped: the origin keeps its own route.
	if _, ok := s1.Best(p); !ok {
		t.Fatal("origin lost its own export to damping")
	}

	// Decay: after ~1.5 half-lives the penalty (2000) falls to ~707 <= 750.
	now = 1500 * sim.Millisecond
	reused := m.DecayDamping(now)
	if len(reused) == 0 {
		t.Fatal("no prefixes reused after decay")
	}
	if m.Suppressed(2, p) {
		t.Fatal("still suppressed after reuse crossing")
	}
	if _, ok := s2.Best(p); !ok {
		t.Fatal("reused route not reinstated")
	}
	if m.RouteReuses == 0 {
		t.Fatal("reuse not counted")
	}
}

func TestGRRefreshIsNotAFlap(t *testing.T) {
	m, _, _, _ := threeMesh(t)
	var now sim.Time
	m.SetClock(clockAt(&now))
	m.SetDamping(DampingConfig{
		Penalty: 1000, Suppress: 1000, Reuse: 500, HalfLife: sim.Second,
	})
	p := vp(rdA, "10.1.0.0/16")
	// Two graceful restart cycles: stale retention + in-place refresh must
	// never charge the damping penalty.
	for i := 0; i < 2; i++ {
		m.SessionDown(1, true)
		m.SessionUp(1)
		m.Converge()
		m.SweepStale(1)
	}
	if m.Suppressed(2, p) || m.RouteSuppressions != 0 {
		t.Fatalf("graceful restart charged damping: suppressions=%d", m.RouteSuppressions)
	}
	// Hard flaps through the same machinery DO count.
	for i := 0; i < 2; i++ {
		m.SessionDown(1, false)
		m.SessionUp(1)
		m.Converge()
	}
	if !m.Suppressed(2, p) {
		t.Fatal("hard session flaps did not charge damping")
	}
}

func TestDampingMaxPenaltyCaps(t *testing.T) {
	m, s1, _, _ := threeMesh(t)
	var now sim.Time
	m.SetClock(clockAt(&now))
	m.SetDamping(DampingConfig{
		Penalty: 1000, Suppress: 2000, Reuse: 750, HalfLife: sim.Second, MaxPenalty: 3000,
	})
	p := vp(rdA, "10.1.0.0/16")
	for i := 0; i < 10; i++ {
		s1.WithdrawLocal(p)
		m.Converge()
		s1.Originate(route(rdA, "10.1.0.0/16", 1, 100, 1, rtA))
		m.Converge()
	}
	// Cap 3000 decays to 750 in two half-lives; uncapped 10000 would need
	// nearly four. The cap bounds the suppression tail.
	now = 2 * sim.Second
	if got := m.DecayDamping(now); len(got) != 1 {
		t.Fatalf("reused = %v, want the capped prefix back", got)
	}
}
