// Clustered route reflection (RFC 4456) with RT-constrained distribution
// (in the spirit of RFC 4684). The full iBGP mesh needs n(n-1)/2 sessions
// — the control-plane face of the paper's §2.1 scaling argument — and a
// single reflector merely moves the hot spot. Clusters split the PE
// population into regions: each client peers with its region's
// reflector(s), and only the reflectors form a full mesh among
// themselves, so sessions drop from O(n²) to O(n·clusters).
//
// Reflection stamps each route once, at its origin cluster: the reflector
// sets ORIGINATOR_ID to the originating PE and seeds CLUSTER_LIST with
// its own cluster ID. Receivers drop looping routes — a reflector drops a
// route whose CLUSTER_LIST already carries its cluster (the redundant-RR
// loop), any speaker drops a route originated by itself. A route is
// "stamped" iff its CLUSTER_LIST is non-empty; clients never
// re-advertise here, so the list never grows past its origin cluster and
// reflected copies stay O(routes), not O(routes · clusters).
//
// RT-constrained distribution is sender-side: a speaker may declare the
// route targets it imports (SetRTInterest); a reflector's interest is the
// union of its clients'. Senders index their advertisable routes by RT
// and emit only what the receiver asked for, which is what keeps a
// million-route backbone's update volume proportional to real imports.
// An undeclared interest means "everything" (back-compat).
package bgp

import (
	"fmt"
	"sort"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/topo"
)

// Cluster is one reflection cluster: its redundant reflectors and the
// client PEs that peer with them.
type Cluster struct {
	ID      uint32
	RRs     []topo.NodeID
	Clients []topo.NodeID
}

// UseClusters switches the mesh to clustered route reflection. Clusters
// are canonicalized (members sorted, clusters ordered by ID); a node may
// appear exactly once across all RR and client lists, and cluster IDs
// must be unique — violations panic, they are scenario bugs.
func (m *Mesh) UseClusters(clusters []Cluster) {
	cs := make([]Cluster, len(clusters))
	for i, c := range clusters {
		cs[i] = Cluster{
			ID:      c.ID,
			RRs:     append([]topo.NodeID(nil), c.RRs...),
			Clients: append([]topo.NodeID(nil), c.Clients...),
		}
		sort.Slice(cs[i].RRs, func(a, b int) bool { return cs[i].RRs[a] < cs[i].RRs[b] })
		sort.Slice(cs[i].Clients, func(a, b int) bool { return cs[i].Clients[a] < cs[i].Clients[b] })
	}
	sort.Slice(cs, func(a, b int) bool { return cs[a].ID < cs[b].ID })
	rrIdx := make(map[topo.NodeID]int)
	clIdx := make(map[topo.NodeID]int)
	ids := make(map[uint32]bool)
	for i, c := range cs {
		if ids[c.ID] {
			panic(fmt.Sprintf("bgp: duplicate cluster ID %d", c.ID))
		}
		ids[c.ID] = true
		if len(c.RRs) == 0 {
			panic(fmt.Sprintf("bgp: cluster %d has no reflectors", c.ID))
		}
		for _, n := range c.RRs {
			if _, dup := rrIdx[n]; dup {
				panic(fmt.Sprintf("bgp: node %d in two clusters", n))
			}
			rrIdx[n] = i
		}
		for _, n := range c.Clients {
			if _, dup := rrIdx[n]; dup {
				panic(fmt.Sprintf("bgp: node %d is both reflector and client", n))
			}
			if _, dup := clIdx[n]; dup {
				panic(fmt.Sprintf("bgp: node %d in two clusters", n))
			}
			clIdx[n] = i
		}
	}
	m.Layout = Clustered
	m.clusters = cs
	m.rrClusterIdx = rrIdx
	m.clientClusterIdx = clIdx
}

// Clusters returns the canonicalized cluster configuration.
func (m *Mesh) Clusters() []Cluster { return m.clusters }

// SetRTInterest declares the route targets speaker n imports, enabling
// sender-side RT-constrained distribution toward it. A nil or empty set
// clears the declaration (n receives everything again).
func (m *Mesh) SetRTInterest(n topo.NodeID, rts []addr.RouteTarget) {
	if len(rts) == 0 {
		delete(m.rtInterest, n)
		return
	}
	if m.rtInterest == nil {
		m.rtInterest = make(map[topo.NodeID][]addr.RouteTarget)
	}
	set := append([]addr.RouteTarget(nil), rts...)
	sort.Slice(set, func(i, j int) bool {
		if set[i].Admin != set[j].Admin {
			return set[i].Admin < set[j].Admin
		}
		return set[i].Assigned < set[j].Assigned
	})
	dedup := set[:0]
	for i, rt := range set {
		if i == 0 || rt != set[i-1] {
			dedup = append(dedup, rt)
		}
	}
	m.rtInterest[n] = dedup
}

// stamp returns the reflected copy of r for origin cluster cid: the
// original attributes plus ORIGINATOR_ID and a fresh CLUSTER_LIST.
// Already-stamped routes (graceful-restart leftovers) pass through.
func stamp(r *VPNRoute, cid uint32) *VPNRoute {
	if len(r.ClusterList) > 0 {
		return r
	}
	c := *r
	c.OriginatorID = r.OriginPE
	c.ClusterList = []uint32{cid}
	return &c
}

func clusterListHas(list []uint32, cid uint32) bool {
	for _, c := range list {
		if c == cid {
			return true
		}
	}
	return false
}

// rrInterest computes a reflector's effective interest: the union of its
// own declaration and its clients'. A single undeclared participant means
// the reflector must receive everything (nil).
func (m *Mesh) rrInterest(c Cluster, rrn topo.NodeID) []addr.RouteTarget {
	if m.rtInterest == nil {
		return nil
	}
	union := make(map[addr.RouteTarget]bool)
	add := func(n topo.NodeID) bool {
		rts, ok := m.rtInterest[n]
		if !ok {
			return false
		}
		for _, rt := range rts {
			union[rt] = true
		}
		return true
	}
	// A pure-P reflector declares nothing of its own; that alone must not
	// widen its interest to "everything" — only clients can do that.
	add(rrn)
	for _, cl := range c.Clients {
		if !add(cl) {
			return nil // an undeclared client imports everything
		}
	}
	if len(union) == 0 {
		return nil
	}
	out := make([]addr.RouteTarget, 0, len(union))
	for rt := range union {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Admin != out[j].Admin {
			return out[i].Admin < out[j].Admin
		}
		return out[i].Assigned < out[j].Assigned
	})
	return out
}

// rtIndex buckets routes by route target for sender-side constrained
// distribution. Routes with no RT land in the catch-all bucket and are
// sent to every receiver (they cannot be matched, only flooded).
type rtIndex struct {
	byRT     map[addr.RouteTarget][]*VPNRoute
	untagged []*VPNRoute
	all      []*VPNRoute
}

func buildRTIndex(routes []*VPNRoute) *rtIndex {
	ix := &rtIndex{byRT: make(map[addr.RouteTarget][]*VPNRoute)}
	ix.all = routes
	for _, r := range routes {
		if len(r.RTs) == 0 {
			ix.untagged = append(ix.untagged, r)
			continue
		}
		for _, rt := range r.RTs {
			ix.byRT[rt] = append(ix.byRT[rt], r)
		}
	}
	return ix
}

// selectFor returns the routes a receiver with the given interest should
// be offered, in deterministic order. nil interest means everything.
func (ix *rtIndex) selectFor(interest []addr.RouteTarget) []*VPNRoute {
	if interest == nil {
		return ix.all
	}
	var out []*VPNRoute
	seen := make(map[*VPNRoute]bool)
	for _, rt := range interest {
		for _, r := range ix.byRT[rt] {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	for _, r := range ix.untagged {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// convergeClustered is the Clustered arm of Converge: three deterministic
// phases that mirror steady-state reflection.
//
//  1. Every Up client sends its exports to every Up reflector of its
//     cluster; the reflector then replaces those adj-RIB-in entries with
//     their stamped copies (reflection happens once, at the origin).
//  2. Reflectors exchange over their full mesh: own exports plus stamped
//     client routes, RT-filtered per receiver. A receiving reflector
//     drops routes already carrying its cluster (redundant-RR loop) or
//     originated by itself.
//  3. Each reflector reflects everything it holds to its own Up clients,
//     RT-filtered; a client drops routes it originated.
func (m *Mesh) convergeClustered() {
	up := func(n topo.NodeID) bool { return m.StateOf(n) == PeerUp }

	// Phase 1: clients -> own-cluster reflectors, then stamp in place.
	for ci := range m.clusters {
		c := &m.clusters[ci]
		for _, cl := range c.Clients {
			if !up(cl) {
				continue
			}
			sc := m.speakers[cl]
			for _, rrn := range c.RRs {
				if !up(rrn) {
					continue
				}
				rr := m.speakers[rrn]
				for _, r := range sc.exports {
					rr.receive(r, true)
					m.UpdatesSent++
				}
			}
		}
		for _, rrn := range c.RRs {
			if !up(rrn) {
				continue
			}
			rr := m.speakers[rrn]
			for _, p := range rr.sortedPrefixes() {
				rs := rr.adjRIBIn[p]
				for i, r := range rs {
					if oc, isClient := m.clientClusterIdx[r.OriginPE]; isClient && oc == ci {
						rs[i] = stamp(r, c.ID)
					}
				}
			}
		}
	}

	// Phase 2: reflector full mesh. The send set is exports plus stamped
	// own-cluster client routes — never routes learned from other
	// reflectors (a route from a non-client peer is reflected to clients
	// only), which is exactly why the reflectors must stay fully meshed.
	var rrs []topo.NodeID
	for _, c := range m.clusters {
		rrs = append(rrs, c.RRs...)
	}
	sort.Slice(rrs, func(i, j int) bool { return rrs[i] < rrs[j] })
	interest := make(map[topo.NodeID][]addr.RouteTarget, len(rrs))
	for _, rrn := range rrs {
		interest[rrn] = m.rrInterest(m.clusters[m.rrClusterIdx[rrn]], rrn)
	}
	for _, from := range rrs {
		if !up(from) {
			continue
		}
		sf := m.speakers[from]
		cid := m.clusters[m.rrClusterIdx[from]].ID
		sendable := append([]*VPNRoute(nil), sf.exports...)
		for _, p := range sf.sortedPrefixes() {
			for _, r := range sf.adjRIBIn[p] {
				// Stale-retained routes are kept for forwarding, not
				// re-announced: refreshing them downstream would erase the
				// peers' own graceful-restart marks.
				if len(r.ClusterList) > 0 && r.ClusterList[0] == cid && !sf.isStale(p, r.OriginPE) {
					sendable = append(sendable, r)
				}
			}
		}
		ix := buildRTIndex(sendable)
		for _, to := range rrs {
			if to == from || !up(to) {
				continue
			}
			tcid := m.clusters[m.rrClusterIdx[to]].ID
			st := m.speakers[to]
			for _, r := range ix.selectFor(interest[to]) {
				m.UpdatesSent++
				if len(r.ClusterList) > 0 && (r.OriginatorID == to || clusterListHas(r.ClusterList, tcid)) {
					m.LoopPrevented++
					continue
				}
				if r.OriginPE == to {
					m.LoopPrevented++
					continue
				}
				st.receive(r, true)
			}
		}
	}

	// Phase 3: reflect down to clients.
	for ci := range m.clusters {
		c := &m.clusters[ci]
		for _, rrn := range c.RRs {
			if !up(rrn) {
				continue
			}
			rr := m.speakers[rrn]
			reflect := append([]*VPNRoute(nil), rr.exports...)
			for _, p := range rr.sortedPrefixes() {
				for _, r := range rr.adjRIBIn[p] {
					if !rr.isStale(p, r.OriginPE) {
						reflect = append(reflect, r)
					}
				}
			}
			ix := buildRTIndex(reflect)
			for _, cl := range c.Clients {
				if !up(cl) {
					continue
				}
				var want []addr.RouteTarget
				if m.rtInterest != nil {
					want = m.rtInterest[cl]
				}
				sc := m.speakers[cl]
				for _, r := range ix.selectFor(want) {
					m.UpdatesSent++
					if len(r.ClusterList) > 0 && r.OriginatorID == cl {
						m.LoopPrevented++
						continue
					}
					if r.OriginPE == cl {
						m.LoopPrevented++
						continue
					}
					sc.receive(r, false)
				}
			}
		}
	}
}
