package bgp

import (
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/topo"
)

func benchMesh(b *testing.B, speakers, routesPer int, rr bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		m := NewMesh()
		for s := 0; s < speakers; s++ {
			sp := m.AddSpeaker(topo.NodeID(s), addr.IPv4(uint32(s)))
			for r := 0; r < routesPer; r++ {
				sp.Originate(&VPNRoute{
					Prefix: addr.VPNPrefix{
						RD:     addr.RouteDistinguisher{Admin: 65000, Assigned: 1},
						Prefix: addr.NewPrefix(addr.IPv4(uint32(s*routesPer+r)<<8), 24),
					},
					NextHop: addr.IPv4(uint32(s)), Label: 100,
					RTs:      []addr.RouteTarget{{Admin: 65000, Assigned: 1}},
					OriginPE: topo.NodeID(s),
				})
			}
		}
		if rr {
			m.UseRouteReflector(0)
		}
		m.Converge()
	}
}

func BenchmarkFullMesh8x50(b *testing.B)        { benchMesh(b, 8, 50, false) }
func BenchmarkFullMesh32x50(b *testing.B)       { benchMesh(b, 32, 50, false) }
func BenchmarkRouteReflector32x50(b *testing.B) { benchMesh(b, 32, 50, true) }
