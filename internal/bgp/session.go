// BGP session lifecycle and robustness: peer state (Up/Down/Restarting),
// RFC 4724-style graceful restart with stale-route retention and
// mark-and-sweep refresh, and RFC 2439-style route-flap damping with a
// per-prefix penalty, exponential half-life decay, and suppress/reuse
// thresholds.
//
// The mesh stays a full-recompute model: Converge() redistributes exports
// between speakers whose sessions are Up. A Down or Restarting speaker
// neither sends nor receives; its peers either withdraw its routes
// (session loss without graceful restart) or keep them marked stale and
// continue forwarding on them until the restart timer or a refresh settles
// their fate (graceful restart). Every mutation here is deterministic:
// iteration over speakers is sorted, and per-prefix bookkeeping is order
// independent, so the serial-vs-parallel equivalence harness stays
// byte-identical.
package bgp

import (
	"math"
	"sort"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
)

// PeerState is one speaker's session state as seen by the mesh.
type PeerState int

// Session states.
const (
	PeerUp PeerState = iota
	PeerDown
	PeerRestarting // down, but peers preserve its routes as stale (RFC 4724)
)

func (s PeerState) String() string {
	switch s {
	case PeerDown:
		return "down"
	case PeerRestarting:
		return "restarting"
	}
	return "up"
}

// DampingConfig tunes route-flap damping. The zero value disables it.
type DampingConfig struct {
	// Penalty is added to a prefix's figure of merit on each flap
	// (withdrawal followed by re-announcement).
	Penalty float64
	// Suppress: received paths for a prefix are excluded from best-path
	// selection once its penalty reaches this threshold.
	Suppress float64
	// Reuse: a suppressed prefix is reinstated once decay brings its
	// penalty at or below this threshold.
	Reuse float64
	// HalfLife of the exponential penalty decay.
	HalfLife sim.Time
	// MaxPenalty caps accumulation (0 = 4x Suppress).
	MaxPenalty float64
}

// Enabled reports whether the configuration describes active damping.
func (c DampingConfig) Enabled() bool {
	return c.Penalty > 0 && c.Suppress > 0 && c.HalfLife > 0
}

// dampState is one prefix's flap history at one speaker.
type dampState struct {
	penalty    float64
	last       sim.Time // when penalty was last updated
	suppressed bool
}

// decayTo applies the exponential half-life decay up to now.
func (d *dampState) decayTo(now sim.Time, halfLife sim.Time) {
	if halfLife <= 0 || now <= d.last {
		d.last = now
		return
	}
	dt := float64(now-d.last) / float64(halfLife)
	d.penalty *= math.Exp2(-dt)
	d.last = now
}

// PeerImpact reports, for one surviving peer, how a session event touched
// its RIB: routes retained stale (graceful restart) or withdrawn.
type PeerImpact struct {
	Peer      topo.NodeID
	Stale     int
	Withdrawn int
}

// SetClock gives the mesh a virtual-time source for damping decay. Without
// one, penalties never decay (time stands still at zero).
func (m *Mesh) SetClock(now func() sim.Time) { m.clock = now }

// SetDamping enables route-flap damping with the given thresholds.
func (m *Mesh) SetDamping(cfg DampingConfig) {
	if cfg.MaxPenalty == 0 {
		cfg.MaxPenalty = 4 * cfg.Suppress
	}
	m.damping = cfg
	// Seed the flap ledger from the current adj-RIB-in so that enabling
	// damping on an already-converged mesh charges the very first flap.
	for _, s := range m.speakers {
		if s.prevHad != nil {
			continue
		}
		s.prevHad = make(map[addr.VPNPrefix]bool, len(s.adjRIBIn))
		for p := range s.adjRIBIn {
			s.prevHad[p] = true
		}
	}
}

// Damping returns the active damping configuration.
func (m *Mesh) Damping() DampingConfig { return m.damping }

func (m *Mesh) now() sim.Time {
	if m.clock == nil {
		return 0
	}
	return m.clock()
}

// StateOf returns the session state of node n (Up when never touched).
func (m *Mesh) StateOf(n topo.NodeID) PeerState {
	if m.peerState == nil {
		return PeerUp
	}
	return m.peerState[n]
}

func (m *Mesh) setState(n topo.NodeID, st PeerState) {
	if m.peerState == nil {
		m.peerState = make(map[topo.NodeID]PeerState)
	}
	if st == PeerUp {
		delete(m.peerState, n)
		return
	}
	m.peerState[n] = st
}

// lostOrigins returns the predicate selecting the routes speaker s loses
// when its session toward n dies. Losing the route reflector severs a
// client from everything it did not originate; otherwise only routes
// originated by n are affected (in the full mesh they arrived on the
// direct session; through an RR the reflector withdraws them on the
// origin's behalf).
func (m *Mesh) lostOrigins(s *Speaker, n topo.NodeID) func(*VPNRoute) bool {
	if m.Layout == RouteReflector && n == m.rr && s.Node != m.rr {
		self := s.Node
		return func(r *VPNRoute) bool { return r.OriginPE != self }
	}
	if m.Layout == Clustered {
		if ci, isRR := m.rrClusterIdx[n]; isRR {
			// Redundancy first: with another Up reflector in n's cluster,
			// every distribution path survives and only n's own exports die.
			lastUp := true
			for _, rrn := range m.clusters[ci].RRs {
				if rrn != n && m.StateOf(rrn) == PeerUp {
					lastUp = false
					break
				}
			}
			if !lastUp {
				return func(r *VPNRoute) bool { return r.OriginPE == n }
			}
			if sci, isClient := m.clientClusterIdx[s.Node]; isClient && sci == ci {
				// The cluster's last reflector died under its client:
				// severed from the whole mesh except its own routes.
				self := s.Node
				return func(r *VPNRoute) bool { return r.OriginPE != self }
			}
			// Everyone else loses the unreachable cluster: n's exports and
			// every route originated by n's clients.
			return func(r *VPNRoute) bool {
				if r.OriginPE == n {
					return true
				}
				oc, isClient := m.clientClusterIdx[r.OriginPE]
				return isClient && oc == ci
			}
		}
	}
	return func(r *VPNRoute) bool { return r.OriginPE == n }
}

// SessionDown flaps node n's sessions. With graceful restart, every
// surviving peer keeps n's routes marked stale — best paths, VRF imports,
// and the label plane keep working on them — awaiting refresh or sweep.
// Without it, peers withdraw the routes immediately. The downed box itself
// loses its RIB either way (its control plane is gone); its exports
// survive, modelling configuration that returns with the process.
// The per-peer impact is returned sorted by peer for deterministic
// journaling.
func (m *Mesh) SessionDown(n topo.NodeID, graceful bool) []PeerImpact {
	st := PeerDown
	if graceful {
		st = PeerRestarting
	}
	m.setState(n, st)
	m.SessionFlaps++
	if own, ok := m.speakers[n]; ok {
		own.adjRIBIn = make(map[addr.VPNPrefix][]*VPNRoute)
		own.locRIB = make(map[addr.VPNPrefix]*VPNRoute)
		own.stale = nil
		own.damp = nil
		own.prevHad = nil
		own.flapPending = nil
	}
	var out []PeerImpact
	for _, id := range m.sortedIDs() {
		if id == n || m.StateOf(id) != PeerUp {
			continue
		}
		s := m.speakers[id]
		match := m.lostOrigins(s, n)
		im := PeerImpact{Peer: id}
		changed := false
		for p, rs := range s.adjRIBIn {
			if graceful {
				for _, r := range rs {
					if !match(r) {
						continue
					}
					if !s.isStale(p, r.OriginPE) {
						m.StaleRetained++
					}
					s.markStale(p, r.OriginPE)
					im.Stale++
				}
				continue
			}
			kept := rs[:0]
			for _, r := range rs {
				if match(r) {
					s.clearStale(p, r.OriginPE)
					im.Withdrawn++
					m.WithdrawalsSent++
					changed = true
					continue
				}
				kept = append(kept, r)
			}
			if len(kept) == 0 {
				delete(s.adjRIBIn, p)
				s.noteWithdrawn(p)
			} else {
				s.adjRIBIn[p] = kept
			}
		}
		if changed {
			s.selectBest()
		}
		if im.Stale > 0 || im.Withdrawn > 0 {
			out = append(out, im)
		}
	}
	return out
}

// SessionUp re-establishes node n's sessions. The caller runs Converge to
// redistribute (refreshing stale routes in place) and then SweepStale to
// drop what the restarted box no longer announces.
func (m *Mesh) SessionUp(n topo.NodeID) {
	m.setState(n, PeerUp)
}

// StaleFrom counts, per surviving peer, the routes currently marked stale
// that n's session loss caused (sorted by peer).
func (m *Mesh) StaleFrom(n topo.NodeID) []PeerImpact {
	var out []PeerImpact
	for _, id := range m.sortedIDs() {
		if id == n {
			continue
		}
		s := m.speakers[id]
		match := m.lostOrigins(s, n)
		count := 0
		for p, origins := range s.stale {
			for _, r := range s.adjRIBIn[p] {
				if origins[r.OriginPE] && match(r) {
					count++
				}
			}
		}
		if count > 0 {
			out = append(out, PeerImpact{Peer: id, Stale: count})
		}
	}
	return out
}

// StaleCount returns the total number of stale-retained routes.
func (m *Mesh) StaleCount() int {
	n := 0
	for _, s := range m.speakers {
		for p, origins := range s.stale {
			for _, r := range s.adjRIBIn[p] {
				if origins[r.OriginPE] {
					n++
				}
			}
		}
	}
	return n
}

// SweepStale removes every still-stale route that n's session loss caused:
// the mark-and-sweep end of graceful restart (re-establishment refreshed
// the survivors; what remains was not re-announced) and the hard fallback
// when the restart timer expires. Withdrawals count per peer; the result
// is sorted by peer.
func (m *Mesh) SweepStale(n topo.NodeID) (int, []PeerImpact) {
	total := 0
	var out []PeerImpact
	for _, id := range m.sortedIDs() {
		if id == n {
			continue
		}
		s := m.speakers[id]
		match := m.lostOrigins(s, n)
		im := PeerImpact{Peer: id}
		for p, origins := range s.stale {
			rs := s.adjRIBIn[p]
			kept := rs[:0]
			for _, r := range rs {
				if origins[r.OriginPE] && match(r) {
					s.clearStale(p, r.OriginPE)
					im.Withdrawn++
					continue
				}
				kept = append(kept, r)
			}
			if len(kept) == 0 {
				delete(s.adjRIBIn, p)
				s.noteWithdrawn(p)
			} else {
				s.adjRIBIn[p] = kept
			}
		}
		if im.Withdrawn > 0 {
			s.selectBest()
			total += im.Withdrawn
			m.StaleSwept += im.Withdrawn
			m.WithdrawalsSent += im.Withdrawn
			out = append(out, im)
		}
	}
	return total, out
}

// stale bookkeeping on the speaker: (prefix, origin) pairs retained under
// graceful restart.

func (s *Speaker) markStale(p addr.VPNPrefix, origin topo.NodeID) {
	if s.stale == nil {
		s.stale = make(map[addr.VPNPrefix]map[topo.NodeID]bool)
	}
	origins := s.stale[p]
	if origins == nil {
		origins = make(map[topo.NodeID]bool)
		s.stale[p] = origins
	}
	origins[origin] = true
}

func (s *Speaker) isStale(p addr.VPNPrefix, origin topo.NodeID) bool {
	return s.stale[p][origin]
}

func (s *Speaker) clearStale(p addr.VPNPrefix, origin topo.NodeID) {
	origins, ok := s.stale[p]
	if !ok {
		return
	}
	delete(origins, origin)
	if len(origins) == 0 {
		delete(s.stale, p)
	}
}

// StaleRoutes returns the number of stale-retained routes at this speaker.
func (s *Speaker) StaleRoutes() int {
	n := 0
	for p, origins := range s.stale {
		for _, r := range s.adjRIBIn[p] {
			if origins[r.OriginPE] {
				n++
			}
		}
	}
	return n
}

// clearAdjRIBKeepStale resets adj-RIB-in for a fresh redistribution round
// while preserving stale-retained routes, which refresh in place when the
// restarted origin re-announces them.
func (s *Speaker) clearAdjRIBKeepStale() {
	if len(s.stale) == 0 {
		s.adjRIBIn = make(map[addr.VPNPrefix][]*VPNRoute)
		return
	}
	fresh := make(map[addr.VPNPrefix][]*VPNRoute, len(s.stale))
	for p, origins := range s.stale {
		for _, r := range s.adjRIBIn[p] {
			if origins[r.OriginPE] {
				fresh[p] = append(fresh[p], r)
			}
		}
	}
	s.adjRIBIn = fresh
}

// damping: the receiver-side flap ledger. A flap is a prefix that left
// adj-RIB-in and came back; graceful-restart refreshes never register as
// flaps because the stale route is replaced in place, not withdrawn.

// noteWithdrawn records that prefix p fully left this speaker's adj-RIB-in
// outside a Converge round; if it returns at the next round, that is a flap.
func (s *Speaker) noteWithdrawn(p addr.VPNPrefix) {
	if !s.prevHad[p] {
		return
	}
	delete(s.prevHad, p)
	if s.flapPending == nil {
		s.flapPending = make(map[addr.VPNPrefix]bool)
	}
	s.flapPending[p] = true
}

func (s *Speaker) dampFor(p addr.VPNPrefix) *dampState {
	if s.damp == nil {
		s.damp = make(map[addr.VPNPrefix]*dampState)
	}
	d, ok := s.damp[p]
	if !ok {
		d = &dampState{}
		s.damp[p] = d
	}
	return d
}

// updateDamping is the Converge epilogue: diff the received-prefix set
// against the previous round, charge the penalty for every
// withdrawn-and-re-announced prefix, and cross the suppress threshold
// where earned. Runs only for Up speakers.
func (s *Speaker) updateDamping(m *Mesh, now sim.Time) {
	if !m.damping.Enabled() {
		return
	}
	nowHas := make(map[addr.VPNPrefix]bool, len(s.adjRIBIn))
	for p := range s.adjRIBIn {
		nowHas[p] = true
	}
	for p := range s.prevHad {
		if !nowHas[p] {
			if s.flapPending == nil {
				s.flapPending = make(map[addr.VPNPrefix]bool)
			}
			s.flapPending[p] = true
		}
	}
	for p := range nowHas {
		if !s.flapPending[p] {
			continue
		}
		delete(s.flapPending, p)
		d := s.dampFor(p)
		d.decayTo(now, m.damping.HalfLife)
		d.penalty += m.damping.Penalty
		if d.penalty > m.damping.MaxPenalty {
			d.penalty = m.damping.MaxPenalty
		}
		if !d.suppressed && d.penalty >= m.damping.Suppress {
			d.suppressed = true
			m.RouteSuppressions++
			m.newlySuppressed = append(m.newlySuppressed, p)
		}
	}
	s.prevHad = nowHas
}

// DecayDamping ages every penalty to now and reinstates prefixes whose
// penalty fell to the reuse threshold. The reinstated prefixes are
// returned sorted and deduplicated for journaling.
func (m *Mesh) DecayDamping(now sim.Time) []addr.VPNPrefix {
	if !m.damping.Enabled() {
		return nil
	}
	reused := make(map[addr.VPNPrefix]bool)
	for _, id := range m.sortedIDs() {
		s := m.speakers[id]
		changed := false
		for p, d := range s.damp {
			d.decayTo(now, m.damping.HalfLife)
			if d.suppressed && d.penalty <= m.damping.Reuse {
				d.suppressed = false
				m.RouteReuses++
				reused[p] = true
				changed = true
			}
			if !d.suppressed && d.penalty < 1 {
				delete(s.damp, p)
			}
		}
		if changed {
			s.selectBest()
		}
	}
	if len(reused) == 0 {
		return nil
	}
	out := make([]addr.VPNPrefix, 0, len(reused))
	for p := range reused {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// TakeSuppressed drains the prefixes suppressed since the last call,
// sorted and deduplicated for journaling.
func (m *Mesh) TakeSuppressed() []addr.VPNPrefix {
	if len(m.newlySuppressed) == 0 {
		return nil
	}
	seen := make(map[addr.VPNPrefix]bool, len(m.newlySuppressed))
	out := m.newlySuppressed[:0]
	for _, p := range m.newlySuppressed {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	m.newlySuppressed = nil
	return out
}

// Suppressed reports whether received paths for p are damped at speaker n.
func (m *Mesh) Suppressed(n topo.NodeID, p addr.VPNPrefix) bool {
	s, ok := m.speakers[n]
	if !ok {
		return false
	}
	d, ok := s.damp[p]
	return ok && d.suppressed
}
