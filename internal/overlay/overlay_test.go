package overlay

import (
	"testing"
	"testing/quick"
)

func TestPaperNumbers(t *testing.T) {
	// §2.1's two data points: 10 sites -> 45 VCs; 200 sites -> 19,900
	// ("about 20,000").
	if got := MeshVCCount(10); got != 45 {
		t.Fatalf("MeshVCCount(10) = %d, want 45", got)
	}
	if got := MeshVCCount(200); got != 19900 {
		t.Fatalf("MeshVCCount(200) = %d, want 19900", got)
	}
}

func TestFullMeshProvisioning(t *testing.T) {
	v := New("acme", FullMesh)
	for i := 0; i < 10; i++ {
		v.AddSite(SiteID(i), 1e6)
	}
	if v.NumVCs() != 45 {
		t.Fatalf("NumVCs = %d, want 45", v.NumVCs())
	}
	if v.NumSites() != 10 {
		t.Fatalf("NumSites = %d", v.NumSites())
	}
	if v.EndpointConfigs() != 90 {
		t.Fatalf("EndpointConfigs = %d", v.EndpointConfigs())
	}
	if v.RoutingAdjacencies() != 45 {
		t.Fatalf("RoutingAdjacencies = %d", v.RoutingAdjacencies())
	}
}

func TestIncrementalCostGrows(t *testing.T) {
	// Adding the k-th site to a mesh costs k-1 new VCs: the marginal pain
	// grows with VPN size.
	v := New("x", FullMesh)
	for i := 0; i < 20; i++ {
		added := v.AddSite(SiteID(i), 1e6)
		if added != i {
			t.Fatalf("adding site %d created %d VCs, want %d", i, added, i)
		}
	}
}

func TestHubAndSpoke(t *testing.T) {
	v := New("hub", HubAndSpoke)
	for i := 0; i < 10; i++ {
		v.AddSite(SiteID(i), 1e6)
	}
	if v.NumVCs() != 9 {
		t.Fatalf("hub-and-spoke NumVCs = %d, want 9", v.NumVCs())
	}
	// Spoke-to-spoke pays the hub detour.
	h, err := v.PathHops(3, 7)
	if err != nil || h != 2 {
		t.Fatalf("spoke-spoke hops = %d err=%v, want 2", h, err)
	}
	h, _ = v.PathHops(0, 7)
	if h != 1 {
		t.Fatalf("hub-spoke hops = %d, want 1", h)
	}
	h, _ = v.PathHops(4, 4)
	if h != 0 {
		t.Fatalf("self hops = %d", h)
	}
}

func TestPathHopsUnknownSite(t *testing.T) {
	v := New("x", FullMesh)
	v.AddSite(1, 1e6)
	if _, err := v.PathHops(1, 99); err == nil {
		t.Fatal("unknown site accepted")
	}
}

// Property: a full-mesh overlay of n sites always has exactly n(n-1)/2 VCs,
// however the sites are added.
func TestMeshCountProperty(t *testing.T) {
	f := func(n uint8) bool {
		sites := int(n%64) + 1
		v := New("p", FullMesh)
		for i := 0; i < sites; i++ {
			v.AddSite(SiteID(i*7), 1e6)
		}
		return v.NumVCs() == MeshVCCount(sites)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVCsSorted(t *testing.T) {
	v := New("s", FullMesh)
	for _, s := range []SiteID{5, 1, 3} {
		v.AddSite(s, 1e6)
	}
	vcs := v.VCs()
	for i := 1; i < len(vcs); i++ {
		if vcs[i-1].A > vcs[i].A || (vcs[i-1].A == vcs[i].A && vcs[i-1].B > vcs[i].B) {
			t.Fatalf("VCs not sorted: %v", vcs)
		}
	}
}
