// Package overlay models the pre-MPLS baseline of §2.1: a VPN built from
// point-to-point virtual circuits (frame relay / ATM PVCs, or equivalently
// per-pair IP tunnels). Its purpose is experiment E1 — counting the
// provisioning state an overlay needs as the site count grows:
//
//	"A network with N points of service would create N(N-1)/2 virtual
//	circuits if each service-point-to-partner flow were mapped to a
//	virtual circuit. ... In a network with 200 service points (a
//	medium-sized VPN), about 20,000 virtual circuits would be required."
package overlay

import (
	"fmt"
	"sort"
)

// SiteID identifies a customer site in an overlay VPN.
type SiteID int

// VC is one provisioned virtual circuit between two sites. Each VC carries
// its own configuration burden: two endpoints to configure, a committed
// information rate to manage, and (for IP tunnels) a routing adjacency.
type VC struct {
	A, B SiteID
	// CIRBps is the committed rate; overlay QoS is per-VC, so the operator
	// must size every one of these individually (§2.2's administration
	// burden).
	CIRBps float64
}

// Topology selects how sites are interconnected.
type Topology int

// Overlay interconnection patterns.
const (
	// FullMesh provisions a VC per site pair: any-to-any connectivity,
	// N(N-1)/2 circuits.
	FullMesh Topology = iota
	// HubAndSpoke provisions one VC per spoke to a hub site: N-1 circuits
	// but all spoke-to-spoke traffic detours through the hub (the latency
	// penalty measured in E1's secondary column).
	HubAndSpoke
)

// VPN is one overlay VPN's provisioning state.
type VPN struct {
	Name     string
	Topology Topology
	sites    []SiteID
	vcs      []VC
}

// New creates an empty overlay VPN with the given interconnection pattern.
func New(name string, t Topology) *VPN {
	return &VPN{Name: name, Topology: t}
}

// AddSite provisions connectivity for a new site: VCs to every existing
// site (full mesh) or to the hub (hub-and-spoke; the first site added is
// the hub). It returns the number of new VCs — the incremental provisioning
// work the operator performs, which for a mesh grows linearly with VPN size
// and is exactly the pain §2.1 describes.
func (v *VPN) AddSite(s SiteID, cirBps float64) int {
	added := 0
	switch v.Topology {
	case FullMesh:
		for _, o := range v.sites {
			v.vcs = append(v.vcs, VC{A: o, B: s, CIRBps: cirBps})
			added++
		}
	case HubAndSpoke:
		if len(v.sites) > 0 {
			v.vcs = append(v.vcs, VC{A: v.sites[0], B: s, CIRBps: cirBps})
			added++
		}
	}
	v.sites = append(v.sites, s)
	return added
}

// NumSites returns the number of sites.
func (v *VPN) NumSites() int { return len(v.sites) }

// NumVCs returns the total circuits provisioned — the E1 headline number.
func (v *VPN) NumVCs() int { return len(v.vcs) }

// VCs returns the provisioned circuits sorted by endpoints.
func (v *VPN) VCs() []VC {
	out := append([]VC(nil), v.vcs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// EndpointConfigs returns the number of per-device tunnel endpoint
// configurations (2 per VC): a proxy for operator workload.
func (v *VPN) EndpointConfigs() int { return 2 * len(v.vcs) }

// RoutingAdjacencies returns the number of routing protocol adjacencies the
// customer must run over the overlay (one per VC): with a mesh, each CE
// peers with N-1 others, the "hop intensive routed infrastructure" MPLS
// flattens (§3).
func (v *VPN) RoutingAdjacencies() int { return len(v.vcs) }

// PathHops returns how many VC hops traffic between two sites crosses:
// 1 in a mesh, 2 via the hub for spoke-to-spoke traffic.
func (v *VPN) PathHops(a, b SiteID) (int, error) {
	if a == b {
		return 0, nil
	}
	has := func(s SiteID) bool {
		for _, x := range v.sites {
			if x == s {
				return true
			}
		}
		return false
	}
	if !has(a) || !has(b) {
		return 0, fmt.Errorf("overlay: site not in VPN")
	}
	if v.Topology == FullMesh {
		return 1, nil
	}
	if len(v.sites) > 0 && (a == v.sites[0] || b == v.sites[0]) {
		return 1, nil
	}
	return 2, nil
}

// MeshVCCount is the closed form the paper quotes: N(N-1)/2.
func MeshVCCount(sites int) int { return sites * (sites - 1) / 2 }
