package topo

import (
	"fmt"
	"math"

	"mplsvpn/internal/sim"
)

// PartitionResult describes a k-way node partition of the graph for the
// sharded simulation backend.
type PartitionResult struct {
	NumShards int
	Assign    []int // node -> shard index

	// CutLinks counts directed links whose endpoints land on different
	// shards; every packet over one costs a barrier handoff.
	CutLinks int
	// MinCutDelay is the smallest propagation delay over any cut link: the
	// largest legal conservative lookahead for this partition (sim.MaxTime
	// when nothing is cut).
	MinCutDelay sim.Time
	// PairDelay[i][j] is the smallest propagation delay over any cut link
	// from a shard-i node to a shard-j node — the per-pair conservative
	// lookahead bound (sim.MaxTime when no i->j link exists, 0 on the
	// diagonal). Its minimum off-diagonal finite entry equals MinCutDelay,
	// and every entry is at least MinCutDelay: feeding the matrix to
	// sim.Engine.SetLookahead can only lengthen segments, never shorten
	// them below the classic global bound.
	PairDelay [][]sim.Time
}

// Partition colors the graph's nodes into at most k balanced connected
// regions for parallel execution. The decomposition follows the paper's
// own structure: a site's hosts, CE, and access tail hang off one PE, so
// the partition must never split them from it — zero- and near-zero-delay
// edges cannot be cut, because a cut edge's delay bounds the engine's
// lookahead.
//
// The algorithm is deterministic (no RNG, ties broken by lowest ID):
//
//  1. contract every zero-delay duplex link (host/LAN edges) into
//     supernodes — those edges can never be cut;
//  2. pick k seed supernodes by greedy k-center over unweighted hop
//     distance, spreading seeds as far apart as possible;
//  3. grow the k regions breadth-first, always extending the currently
//     smallest region (by node count), so regions stay balanced and
//     connected.
//
// Disconnected components are folded into the smallest region when the
// frontiers run dry. The result may use fewer than k shards when the
// graph has fewer supernodes.
func Partition(g *Graph, k int) *PartitionResult {
	n := g.NumNodes()
	if n == 0 {
		return &PartitionResult{NumShards: 1, Assign: []int{}, MinCutDelay: sim.MaxTime}
	}
	if k < 1 {
		k = 1
	}

	// 1. Contract zero-delay edges with union-find.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra // lowest ID roots: deterministic representatives
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		if l.Delay <= 0 {
			union(int(l.From), int(l.To))
		}
	}

	// Dense supernode IDs in node order.
	compOf := make([]int, n)
	var compWeight []int
	index := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		c, ok := index[r]
		if !ok {
			c = len(compWeight)
			index[r] = c
			compWeight = append(compWeight, 0)
		}
		compOf[i] = c
		compWeight[c]++
	}
	nc := len(compWeight)
	if k > nc {
		k = nc
	}

	// Supernode adjacency, deduplicated, neighbor lists in deterministic
	// (link scan) order.
	adj := make([][]int, nc)
	seen := make(map[[2]int]bool)
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		a, b := compOf[l.From], compOf[l.To]
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		adj[a] = append(adj[a], b)
	}

	// 2. Greedy k-center seeds over hop distance: dist holds each
	// supernode's distance to the nearest chosen seed.
	seeds := []int{0}
	dist := make([]int, nc)
	multiBFS := func(srcs []int) {
		for i := range dist {
			dist[i] = math.MaxInt
		}
		queue := []int{}
		for _, s := range srcs {
			dist[s] = 0
			queue = append(queue, s)
		}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			for _, nb := range adj[c] {
				if dist[c]+1 < dist[nb] {
					dist[nb] = dist[c] + 1
					queue = append(queue, nb)
				}
			}
		}
	}
	for len(seeds) < k {
		multiBFS(seeds)
		best, bestD := -1, -1
		for c := 0; c < nc; c++ {
			d := dist[c]
			if d == 0 {
				continue
			}
			if d == math.MaxInt {
				d = math.MaxInt - 1 // unreachable: maximally far, seed it
			}
			if d > bestD {
				best, bestD = c, d
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
	}
	k = len(seeds)

	// 3. Balanced multi-source BFS growth.
	compShard := make([]int, nc)
	for i := range compShard {
		compShard[i] = -1
	}
	frontiers := make([][]int, k)
	weights := make([]int, k)
	assignComp := func(c, s int) {
		compShard[c] = s
		weights[s] += compWeight[c]
		frontiers[s] = append(frontiers[s], c)
	}
	for s, c := range seeds {
		assignComp(c, s)
	}
	remaining := nc - k
	for remaining > 0 {
		// Smallest region with a live frontier claims the next supernode.
		best := -1
		for s := 0; s < k; s++ {
			if len(frontiers[s]) == 0 {
				continue
			}
			if best < 0 || weights[s] < weights[best] {
				best = s
			}
		}
		if best < 0 {
			// Disconnected leftovers: fold the lowest-ID unassigned
			// supernode into the smallest region and keep growing.
			small := 0
			for s := 1; s < k; s++ {
				if weights[s] < weights[small] {
					small = s
				}
			}
			for c := 0; c < nc; c++ {
				if compShard[c] < 0 {
					assignComp(c, small)
					remaining--
					break
				}
			}
			continue
		}
		// Pop the frontier until an unassigned neighbor appears.
		grew := false
		for len(frontiers[best]) > 0 && !grew {
			c := frontiers[best][0]
			rest := frontiers[best][1:]
			next := -1
			for _, nb := range adj[c] {
				if compShard[nb] < 0 {
					next = nb
					break
				}
			}
			if next < 0 {
				frontiers[best] = rest
				continue
			}
			assignComp(next, best)
			remaining--
			grew = true
		}
	}

	res := &PartitionResult{NumShards: k, Assign: make([]int, n), MinCutDelay: sim.MaxTime}
	for i := 0; i < n; i++ {
		res.Assign[i] = compShard[compOf[i]]
	}
	res.PairDelay = make([][]sim.Time, k)
	for i := range res.PairDelay {
		res.PairDelay[i] = make([]sim.Time, k)
		for j := range res.PairDelay[i] {
			if i != j {
				res.PairDelay[i][j] = sim.MaxTime
			}
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		si, sj := res.Assign[l.From], res.Assign[l.To]
		if si != sj {
			res.CutLinks++
			if l.Delay < res.MinCutDelay {
				res.MinCutDelay = l.Delay
			}
			if l.Delay < res.PairDelay[si][sj] {
				res.PairDelay[si][sj] = l.Delay
			}
		}
	}
	return res
}

// RecomputePair refreshes the (src, dst) pair bound from the graph — the
// incremental hook for a partition-edge change (a link added between the
// two shards, or a cut link's delay edited). A full link scan filtered to
// one pair; callers feed the result to sim.Engine.UpdatePairLookahead.
func (r *PartitionResult) RecomputePair(g *Graph, src, dst int) sim.Time {
	d := sim.MaxTime
	if src == dst {
		return 0
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		if int(l.From) < len(r.Assign) && int(l.To) < len(r.Assign) &&
			r.Assign[l.From] == src && r.Assign[l.To] == dst && l.Delay < d {
			d = l.Delay
		}
	}
	r.PairDelay[src][dst] = d
	return d
}

// Validate checks the partition invariants against g: full coverage, shard
// indices in range, and no zero-delay link cut.
func (r *PartitionResult) Validate(g *Graph) error {
	if len(r.Assign) != g.NumNodes() {
		return fmt.Errorf("topo: partition covers %d nodes, graph has %d", len(r.Assign), g.NumNodes())
	}
	for node, s := range r.Assign {
		if s < 0 || s >= r.NumShards {
			return fmt.Errorf("topo: node %d assigned to shard %d of %d", node, s, r.NumShards)
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		if r.Assign[l.From] != r.Assign[l.To] && l.Delay <= 0 {
			return fmt.Errorf("topo: zero-delay link %s->%s cut by partition", g.Name(l.From), g.Name(l.To))
		}
	}
	if r.PairDelay != nil {
		if len(r.PairDelay) != r.NumShards {
			return fmt.Errorf("topo: pair-delay matrix has %d rows for %d shards", len(r.PairDelay), r.NumShards)
		}
		min := sim.MaxTime
		for i, row := range r.PairDelay {
			if len(row) != r.NumShards {
				return fmt.Errorf("topo: pair-delay row %d has %d entries for %d shards", i, len(row), r.NumShards)
			}
			for j, d := range row {
				if i == j {
					continue
				}
				if d < r.MinCutDelay {
					return fmt.Errorf("topo: pair bound %d->%d is %v, below the global min-cut delay %v", i, j, d, r.MinCutDelay)
				}
				if d < min {
					min = d
				}
			}
		}
		if r.CutLinks > 0 && min != r.MinCutDelay {
			return fmt.Errorf("topo: tightest pair bound %v disagrees with min-cut delay %v", min, r.MinCutDelay)
		}
	}
	return nil
}
