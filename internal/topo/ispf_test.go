package topo

import (
	"fmt"
	"math/rand"
	"testing"

	"mplsvpn/internal/sim"
)

// mutateLink applies one random single-link event — the exact event class
// ApplyLinkChange contracts to handle — and returns the directed links the
// tracker must be told about.
func mutateLink(rng *rand.Rand, g *Graph) []LinkID {
	lid := LinkID(rng.Intn(g.NumLinks()))
	l := g.Link(lid)
	switch rng.Intn(4) {
	case 0: // duplex flap, both directions (the FailLink/RestoreLink shape)
		rev, ok := g.Reverse(lid)
		if !ok {
			l.Down = !l.Down
			return []LinkID{lid}
		}
		down := !l.Down
		l.Down, rev.Down = down, down
		return []LinkID{lid, rev.ID}
	case 1: // single-direction flap
		l.Down = !l.Down
		return []LinkID{lid}
	case 2: // metric change
		l.Metric = 1 + rng.Intn(10)
		return []LinkID{lid}
	default: // reservation shift (matters only under a bandwidth floor)
		l.ReservedBw = float64(rng.Intn(11)) * 100e6
		return []LinkID{lid}
	}
}

func sameTree(t *testing.T, seed, step int, got, want *SPFResult) {
	t.Helper()
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] || got.Prev[v] != want.Prev[v] {
			t.Fatalf("seed %d step %d node %d: incremental (dist=%d prev=%d), oracle (dist=%d prev=%d)",
				seed, step, v, got.Dist[v], got.Prev[v], want.Dist[v], want.Prev[v])
		}
	}
}

// TestIncrementalSPFMatchesOracleAcrossFlaps is the incremental-CSPF oracle
// contract: across random graphs, random constraint sets, and long random
// sequences of link flaps, metric changes, and reservation shifts, the
// incrementally-maintained tree must equal a from-scratch CSPF run after
// every single event — distances and the canonical lowest-link-ID Prev.
func TestIncrementalSPFMatchesOracleAcrossFlaps(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := randomGraph(rng)
		src := NodeID(rng.Intn(g.NumNodes()))
		c := randomConstraints(rng, g, src)
		inc := NewIncrementalSPF(g, src, c)
		sameTree(t, seed, -1, inc.Result(), g.CSPF(src, c))
		for step := 0; step < 60; step++ {
			for _, lid := range mutateLink(rng, g) {
				inc.ApplyLinkChange(lid)
			}
			sameTree(t, seed, step, inc.Result(), g.CSPF(src, c))
		}
		if inc.IncrementalRuns == 0 {
			t.Fatalf("seed %d: no incremental updates exercised", seed)
		}
	}
}

// TestIncrementalSPFRebuildOnGrowth: a tracker whose graph has grown since
// the last build must fall back to a full recompute rather than serve a
// tree over a stale index.
func TestIncrementalSPFRebuildOnGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng)
	src := NodeID(0)
	inc := NewIncrementalSPF(g, src, Constraints{})
	full := inc.FullRuns

	n := g.AddNode("grown")
	a, _ := g.AddDuplexLink(n, NodeID(1), 1e9, sim.Millisecond, 1)
	inc.ApplyLinkChange(a)
	if inc.FullRuns != full+1 {
		t.Fatalf("growth did not trigger a full rebuild (FullRuns %d -> %d)", full, inc.FullRuns)
	}
	sameTree(t, 7, 0, inc.Result(), g.SPF(src))
}

// TestClusterPEs checks the reflector-cluster helper: full coverage of the
// given PE set, at most k clusters, deterministic output, and members
// sorted within each cluster.
func TestClusterPEs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng)
	var pes []NodeID
	for i := 0; i < g.NumNodes(); i += 2 {
		pes = append(pes, NodeID(i))
	}
	for _, k := range []int{1, 2, 3, len(pes), len(pes) + 5} {
		clusters := ClusterPEs(g, pes, k)
		if len(clusters) == 0 || len(clusters) > k {
			t.Fatalf("k=%d: got %d clusters", k, len(clusters))
		}
		seen := map[NodeID]int{}
		for _, cl := range clusters {
			if len(cl) == 0 {
				t.Fatalf("k=%d: empty cluster", k)
			}
			for i, pe := range cl {
				seen[pe]++
				if i > 0 && cl[i-1] >= pe {
					t.Fatalf("k=%d: cluster not sorted: %v", k, cl)
				}
			}
		}
		for _, pe := range pes {
			if seen[pe] != 1 {
				t.Fatalf("k=%d: PE %d assigned %d times", k, pe, seen[pe])
			}
		}
		again := ClusterPEs(g, pes, k)
		if fmt.Sprint(again) != fmt.Sprint(clusters) {
			t.Fatalf("k=%d: ClusterPEs not deterministic", k)
		}
	}
}
