package topo

import (
	"math"
	"testing"

	"mplsvpn/internal/sim"
)

// lineGraph builds A-B-C-D in a line with unit metrics.
func lineGraph() (*Graph, []NodeID) {
	g := New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	d := g.AddNode("D")
	g.AddDuplexLink(a, b, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(b, c, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(c, d, 10e6, sim.Millisecond, 1)
	return g, []NodeID{a, b, c, d}
}

// fishGraph builds the classic TE "fish": src connects to dst via a short
// 2-hop path (via M) and a long 3-hop path (via X, Y).
//
//	    M
//	   / \
//	SRC   DST
//	   \ /
//	  X - Y
func fishGraph() (g *Graph, src, m, x, y, dst NodeID) {
	g = New()
	src = g.AddNode("SRC")
	m = g.AddNode("M")
	x = g.AddNode("X")
	y = g.AddNode("Y")
	dst = g.AddNode("DST")
	g.AddDuplexLink(src, m, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(m, dst, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(src, x, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(x, y, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(y, dst, 10e6, sim.Millisecond, 1)
	return
}

func TestSPFLine(t *testing.T) {
	g, n := lineGraph()
	r := g.SPF(n[0])
	if r.Dist[n[3]] != 3 {
		t.Fatalf("dist A->D = %d, want 3", r.Dist[n[3]])
	}
	p, ok := r.PathTo(g, n[3])
	if !ok || len(p.Links) != 3 {
		t.Fatalf("path = %v ok=%v", p, ok)
	}
	nodes := p.Nodes(g)
	want := []NodeID{n[0], n[1], n[2], n[3]}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("path nodes = %v, want %v", nodes, want)
		}
	}
	if p.Delay(g) != 3*sim.Millisecond {
		t.Fatalf("path delay = %v", p.Delay(g))
	}
	if p.Cost(g) != 3 {
		t.Fatalf("path cost = %d", p.Cost(g))
	}
}

func TestSPFUnreachable(t *testing.T) {
	g := New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	r := g.SPF(a)
	if r.Reachable(b) {
		t.Fatal("disconnected node reported reachable")
	}
	if r.Dist[b] != math.MaxInt {
		t.Fatalf("dist to unreachable = %d", r.Dist[b])
	}
	if _, ok := r.PathTo(g, b); ok {
		t.Fatal("PathTo returned a path to an unreachable node")
	}
	if !r.Reachable(a) {
		t.Fatal("source must be reachable from itself")
	}
}

func TestSPFPrefersLowMetric(t *testing.T) {
	g, src, m, _, _, dst := func() (*Graph, NodeID, NodeID, NodeID, NodeID, NodeID) {
		return fishGraph()
	}()
	_ = m
	r := g.SPF(src)
	p, _ := r.PathTo(g, dst)
	if len(p.Links) != 2 {
		t.Fatalf("shortest path should be the 2-hop route, got %s", p.String(g))
	}
}

func TestSPFAvoidsDownLink(t *testing.T) {
	g, src, m, _, _, dst := fishGraph()
	g.SetLinkDown(src, m, true)
	r := g.SPF(src)
	p, ok := r.PathTo(g, dst)
	if !ok || len(p.Links) != 3 {
		t.Fatalf("expected 3-hop detour, got %v ok=%v", p.String(g), ok)
	}
	g.SetLinkDown(src, m, false)
	r = g.SPF(src)
	p, _ = r.PathTo(g, dst)
	if len(p.Links) != 2 {
		t.Fatal("link restore not honoured")
	}
}

func TestCSPFBandwidthPruning(t *testing.T) {
	g, src, m, _, _, dst := fishGraph()
	// Reserve 8 Mb/s of the 10 Mb/s short path.
	l, _ := g.FindLink(src, m)
	l.ReservedBw = 8e6
	r := g.CSPF(src, Constraints{MinAvailableBw: 5e6})
	p, ok := r.PathTo(g, dst)
	if !ok || len(p.Links) != 3 {
		t.Fatalf("CSPF should route around the saturated link, got %v", p.String(g))
	}
	// Without the constraint the short path is still chosen.
	r = g.SPF(src)
	p, _ = r.PathTo(g, dst)
	if len(p.Links) != 2 {
		t.Fatal("unconstrained SPF changed unexpectedly")
	}
}

func TestCSPFExcludeNode(t *testing.T) {
	g, src, m, _, _, dst := fishGraph()
	r := g.CSPF(src, Constraints{ExcludeNodes: map[NodeID]bool{m: true}})
	p, ok := r.PathTo(g, dst)
	if !ok || len(p.Links) != 3 {
		t.Fatalf("exclusion not honoured: %v", p.String(g))
	}
}

func TestCSPFExcludeLink(t *testing.T) {
	g, src, m, _, _, dst := fishGraph()
	l, _ := g.FindLink(m, dst)
	r := g.CSPF(src, Constraints{ExcludeLinks: map[LinkID]bool{l.ID: true}})
	p, ok := r.PathTo(g, dst)
	if !ok || len(p.Links) != 3 {
		t.Fatalf("link exclusion not honoured: %v", p.String(g))
	}
}

func TestKShortestPaths(t *testing.T) {
	g, src, _, _, _, dst := fishGraph()
	ps := g.KShortestPaths(src, dst, 3, Constraints{})
	if len(ps) != 2 {
		t.Fatalf("fish has exactly 2 simple paths, got %d", len(ps))
	}
	if len(ps[0].Links) != 2 || len(ps[1].Links) != 3 {
		t.Fatalf("paths not in cost order: %d, %d hops", len(ps[0].Links), len(ps[1].Links))
	}
}

func TestKShortestPathsNoPath(t *testing.T) {
	g := New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	if ps := g.KShortestPaths(a, b, 3, Constraints{}); ps != nil {
		t.Fatalf("expected no paths, got %d", len(ps))
	}
}

func TestFindLinkAndReverse(t *testing.T) {
	g, n := lineGraph()
	l, ok := g.FindLink(n[0], n[1])
	if !ok || l.From != n[0] || l.To != n[1] {
		t.Fatalf("FindLink = %+v ok=%v", l, ok)
	}
	r, ok := g.Reverse(l.ID)
	if !ok || r.From != n[1] || r.To != n[0] {
		t.Fatalf("Reverse = %+v ok=%v", r, ok)
	}
	if _, ok := g.FindLink(n[0], n[3]); ok {
		t.Fatal("FindLink invented a link")
	}
}

func TestNodeByName(t *testing.T) {
	g, _ := lineGraph()
	id, ok := g.NodeByName("C")
	if !ok || g.Name(id) != "C" {
		t.Fatalf("NodeByName failed: %v %v", id, ok)
	}
	if _, ok := g.NodeByName("Z"); ok {
		t.Fatal("found nonexistent node")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	g := New()
	g.AddNode("A")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	g.AddNode("A")
}

func TestPathToSelf(t *testing.T) {
	g, n := lineGraph()
	r := g.SPF(n[0])
	p, ok := r.PathTo(g, n[0])
	if !ok || len(p.Links) != 0 {
		t.Fatalf("path to self = %v ok=%v", p, ok)
	}
}

func TestNextHop(t *testing.T) {
	g, n := lineGraph()
	r := g.SPF(n[0])
	lid, ok := r.NextHop(g, n[3])
	if !ok || g.Link(lid).To != n[1] {
		t.Fatalf("next hop to D should be via B")
	}
	if _, ok := r.NextHop(g, n[0]); ok {
		t.Fatal("next hop to self should not exist")
	}
}

func TestSPFDeterministicTieBreak(t *testing.T) {
	// Two equal-cost paths; the chosen one must be stable across runs.
	g := New()
	a := g.AddNode("A")
	b1 := g.AddNode("B1")
	b2 := g.AddNode("B2")
	c := g.AddNode("C")
	g.AddDuplexLink(a, b1, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(a, b2, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(b1, c, 10e6, sim.Millisecond, 1)
	g.AddDuplexLink(b2, c, 10e6, sim.Millisecond, 1)
	first, _ := g.SPF(a).PathTo(g, c)
	for i := 0; i < 10; i++ {
		p, _ := g.SPF(a).PathTo(g, c)
		if p.String(g) != first.String(g) {
			t.Fatal("equal-cost tie-break is not deterministic")
		}
	}
}
