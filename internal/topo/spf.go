package topo

import (
	"container/heap"
	"math"
	"sort"
)

// SPFResult holds a shortest-path tree rooted at a source node.
type SPFResult struct {
	Source NodeID
	Dist   []int    // Dist[n] = total metric from Source, or math.MaxInt if unreachable
	Prev   []LinkID // Prev[n] = link used to reach n (-1 at source/unreachable)
}

// Constraints restrict link eligibility during CSPF. The zero value imposes
// no constraints, making CSPF equal to SPF.
type Constraints struct {
	// MinAvailableBw prunes links whose unreserved bandwidth is below this
	// value (bits per second). This is the admission-control input for
	// RSVP-TE: "Without knowledge of the commitments already made by the
	// network, it is impossible to route IP flows along paths where
	// resources ... could be guaranteed" (§2.2).
	MinAvailableBw float64
	// ExcludeLinks prunes specific directed links (e.g. for path
	// protection or to avoid a failed resource).
	ExcludeLinks map[LinkID]bool
	// ExcludeNodes prunes transit through specific nodes.
	ExcludeNodes map[NodeID]bool
}

type spfItem struct {
	node NodeID
	dist int
	idx  int
}

type spfHeap []*spfItem

func (h spfHeap) Len() int           { return len(h) }
func (h spfHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h spfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *spfHeap) Push(x any)        { it := x.(*spfItem); it.idx = len(*h); *h = append(*h, it) }
func (h *spfHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// SPF runs Dijkstra from src over up links using IGP metrics.
func (g *Graph) SPF(src NodeID) *SPFResult {
	return g.CSPF(src, Constraints{})
}

// CSPF runs constrained SPF from src: links that fail the constraints are
// treated as absent. Ties between equal-cost paths are broken by lower link
// ID, which makes path selection deterministic.
func (g *Graph) CSPF(src NodeID, c Constraints) *SPFResult {
	n := g.NumNodes()
	res := &SPFResult{
		Source: src,
		Dist:   make([]int, n),
		Prev:   make([]LinkID, n),
	}
	for i := range res.Dist {
		res.Dist[i] = math.MaxInt
		res.Prev[i] = -1
	}
	res.Dist[src] = 0

	h := &spfHeap{}
	heap.Push(h, &spfItem{node: src, dist: 0})
	done := make([]bool, n)

	for h.Len() > 0 {
		it := heap.Pop(h).(*spfItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if c.ExcludeNodes[u] && u != src {
			// Node excluded from transit: settle it but do not relax
			// through it.
			continue
		}
		for _, lid := range g.OutLinks(u) {
			l := g.Link(lid)
			if l.Down || c.ExcludeLinks[lid] {
				continue
			}
			if c.MinAvailableBw > 0 && l.AvailableBw() < c.MinAvailableBw {
				continue
			}
			v := l.To
			nd := res.Dist[u] + l.Metric
			if nd < res.Dist[v] || (nd == res.Dist[v] && res.Prev[v] >= 0 && lid < res.Prev[v]) {
				res.Dist[v] = nd
				res.Prev[v] = lid
				heap.Push(h, &spfItem{node: v, dist: nd})
			}
		}
	}
	return res
}

// Reachable reports whether dst has a path in the SPF tree.
func (r *SPFResult) Reachable(dst NodeID) bool {
	return dst == r.Source || r.Prev[dst] >= 0
}

// PathTo extracts the path from the SPF source to dst.
func (r *SPFResult) PathTo(g *Graph, dst NodeID) (Path, bool) {
	if dst == r.Source {
		return Path{}, true
	}
	if r.Prev[dst] < 0 {
		return Path{}, false
	}
	var rev []LinkID
	for at := dst; at != r.Source; {
		lid := r.Prev[at]
		rev = append(rev, lid)
		at = g.Link(lid).From
	}
	// reverse
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return Path{Links: rev}, true
}

// NextHop returns the first link on the shortest path from the SPF source
// to dst.
func (r *SPFResult) NextHop(g *Graph, dst NodeID) (LinkID, bool) {
	p, ok := r.PathTo(g, dst)
	if !ok || len(p.Links) == 0 {
		return -1, false
	}
	return p.Links[0], true
}

// KShortestPaths returns up to k loop-free paths from src to dst in
// non-decreasing cost order, using Yen's algorithm over CSPF. Used by the TE
// planner to offer alternatives when the shortest path lacks capacity.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, c Constraints) []Path {
	base := g.CSPF(src, c)
	first, ok := base.PathTo(g, dst)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := prev.Nodes(g)
		for i := 0; i < len(prev.Links); i++ {
			spurNode := prevNodes[i]
			rootLinks := append([]LinkID(nil), prev.Links[:i]...)

			// Exclude links used by previous paths sharing this root, and
			// nodes on the root path (except the spur node) to keep paths
			// loop-free.
			ex := Constraints{
				MinAvailableBw: c.MinAvailableBw,
				ExcludeLinks:   map[LinkID]bool{},
				ExcludeNodes:   map[NodeID]bool{},
			}
			for l := range c.ExcludeLinks {
				ex.ExcludeLinks[l] = true
			}
			for n := range c.ExcludeNodes {
				ex.ExcludeNodes[n] = true
			}
			for _, p := range paths {
				if sharesRoot(g, p, rootLinks) && i < len(p.Links) {
					ex.ExcludeLinks[p.Links[i]] = true
				}
			}
			for _, n := range prevNodes[:i] {
				ex.ExcludeNodes[n] = true
			}

			spurRes := g.CSPF(spurNode, ex)
			spur, ok := spurRes.PathTo(g, dst)
			if !ok {
				continue
			}
			total := Path{Links: append(append([]LinkID(nil), rootLinks...), spur.Links...)}
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			return candidates[a].Cost(g) < candidates[b].Cost(g)
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func sharesRoot(g *Graph, p Path, root []LinkID) bool {
	if len(p.Links) < len(root) {
		return false
	}
	for i, l := range root {
		if p.Links[i] != l {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if len(p.Links) != len(q.Links) {
			continue
		}
		same := true
		for i := range p.Links {
			if p.Links[i] != q.Links[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
