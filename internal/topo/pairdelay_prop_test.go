package topo

import (
	"fmt"
	"testing"

	"mplsvpn/internal/sim"
)

// naivePairDelay is the oracle: for every ordered shard pair, the minimum
// delay over all links crossing that pair, by brute-force link scan.
func naivePairDelay(g *Graph, pr *PartitionResult) [][]sim.Time {
	k := pr.NumShards
	m := make([][]sim.Time, k)
	for i := range m {
		m[i] = make([]sim.Time, k)
		for j := range m[i] {
			if i != j {
				m[i][j] = sim.MaxTime
			}
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		si, sj := pr.Assign[l.From], pr.Assign[l.To]
		if si != sj && l.Delay < m[si][sj] {
			m[si][sj] = l.Delay
		}
	}
	return m
}

// randomPairGraph grows a connected graph with rng-chosen extra links and a
// spread of positive delays.
func randomPairGraph(rng *sim.Rand, nodes, extra int) *Graph {
	g := New()
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	delay := func() sim.Time {
		return sim.Time(rng.Intn(20)+1) * 500 * sim.Microsecond
	}
	// Spanning tree first so the graph is connected.
	for i := 1; i < nodes; i++ {
		g.AddDuplexLink(ids[rng.Intn(i)], ids[i], 1e9, delay(), 1)
	}
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b {
			continue
		}
		g.AddDuplexLink(ids[a], ids[b], 1e9, delay(), 1)
	}
	return g
}

// TestPairDelayMatchesOracle is the property test for the lookahead
// matrix: across randomized partitions, every pair entry must equal the
// brute-force per-pair minimum, the tightest finite entry must equal the
// global min-cut delay, and Validate must agree.
func TestPairDelayMatchesOracle(t *testing.T) {
	rng := sim.NewRand(0xBADC0FFE)
	for trial := 0; trial < 40; trial++ {
		nodes := rng.Intn(28) + 4
		g := randomPairGraph(rng, nodes, rng.Intn(2*nodes))
		k := rng.Intn(8) + 1
		pr := Partition(g, k)
		if err := pr.Validate(g); err != nil {
			t.Fatalf("trial %d (nodes=%d k=%d): %v", trial, nodes, k, err)
		}
		want := naivePairDelay(g, pr)
		for i := 0; i < pr.NumShards; i++ {
			for j := 0; j < pr.NumShards; j++ {
				if got := pr.PairDelay[i][j]; got != want[i][j] {
					t.Fatalf("trial %d: PairDelay[%d][%d] = %v, oracle %v", trial, i, j, got, want[i][j])
				}
			}
		}
		// RecomputePair from a poisoned entry must restore the oracle value.
		if pr.NumShards > 1 {
			src := rng.Intn(pr.NumShards)
			dst := (src + 1 + rng.Intn(pr.NumShards-1)) % pr.NumShards
			pr.PairDelay[src][dst] = 0
			if got := pr.RecomputePair(g, src, dst); got != want[src][dst] {
				t.Fatalf("trial %d: RecomputePair(%d,%d) = %v, oracle %v", trial, src, dst, got, want[src][dst])
			}
		}
	}
}

// TestRecomputePairTracksLinkChange pins the incremental path end to end:
// adding a shorter cross-shard link narrows exactly the affected pair.
func TestRecomputePairTracksLinkChange(t *testing.T) {
	g := buildBackboneGraph()
	pr := Partition(g, 2)
	if pr.NumShards != 2 {
		t.Skipf("partitioner produced %d shards", pr.NumShards)
	}
	// Find one node in each shard and connect them with a link shorter
	// than every existing cut link.
	var a, b NodeID = -1, -1
	for n := 0; n < g.NumNodes(); n++ {
		if pr.Assign[n] == 0 && a < 0 {
			a = NodeID(n)
		}
		if pr.Assign[n] == 1 && b < 0 {
			b = NodeID(n)
		}
	}
	short := pr.PairDelay[0][1] / 2
	if short <= 0 {
		t.Fatalf("pair bound %v too small to halve", pr.PairDelay[0][1])
	}
	g.AddDuplexLink(a, b, 1e9, short, 1)
	if got := pr.RecomputePair(g, 0, 1); got != short {
		t.Errorf("RecomputePair(0,1) = %v after adding %v link, want %v", got, short, short)
	}
	if got := pr.RecomputePair(g, 1, 0); got != short {
		t.Errorf("RecomputePair(1,0) = %v after adding %v link, want %v", got, short, short)
	}
}
