package topo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mplsvpn/internal/sim"
)

// randomGraph builds a connected random topology with varied metrics,
// bandwidth headroom, reservations, and a few administratively-down
// links — the full input space of the TE admission-control path.
func randomGraph(rng *rand.Rand) *Graph {
	g := New()
	n := 8 + rng.Intn(16)
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	// Random spanning tree first so most of the graph is reachable.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.AddDuplexLink(nodes[i], nodes[j], 1e9, sim.Millisecond, 1+rng.Intn(10))
	}
	// Then random extra edges.
	for e := 0; e < n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		g.AddDuplexLink(nodes[a], nodes[b], 1e9, sim.Millisecond, 1+rng.Intn(10))
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		l.ReservedBw = float64(rng.Intn(11)) * 100e6 // 0..1000 Mb/s reserved
		if rng.Intn(12) == 0 {
			l.Down = true
		}
	}
	return g
}

// randomConstraints draws a constraint set: sometimes a bandwidth floor,
// sometimes excluded links and nodes.
func randomConstraints(rng *rand.Rand, g *Graph, src NodeID) Constraints {
	var c Constraints
	if rng.Intn(2) == 0 {
		c.MinAvailableBw = float64(1+rng.Intn(10)) * 100e6
	}
	if rng.Intn(2) == 0 {
		c.ExcludeLinks = map[LinkID]bool{}
		for i := 0; i < 1+rng.Intn(4); i++ {
			c.ExcludeLinks[LinkID(rng.Intn(g.NumLinks()))] = true
		}
	}
	if rng.Intn(3) == 0 {
		c.ExcludeNodes = map[NodeID]bool{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			nd := NodeID(rng.Intn(g.NumNodes()))
			if nd != src {
				c.ExcludeNodes[nd] = true
			}
		}
	}
	return c
}

// linkEligible restates the CSPF pruning rule independently.
func linkEligible(l *Link, lid LinkID, c Constraints) bool {
	if l.Down || c.ExcludeLinks[lid] {
		return false
	}
	if c.MinAvailableBw > 0 && l.AvailableBw() < c.MinAvailableBw {
		return false
	}
	return true
}

// bellmanFord is the reference shortest-path oracle: O(V*E) relaxation
// over eligible links, never relaxing out of an excluded transit node.
func bellmanFord(g *Graph, src NodeID, c Constraints) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = math.MaxInt
	}
	dist[src] = 0
	for round := 0; round < g.NumNodes(); round++ {
		changed := false
		for lid := 0; lid < g.NumLinks(); lid++ {
			l := g.Link(LinkID(lid))
			if !linkEligible(l, LinkID(lid), c) {
				continue
			}
			if l.From != src && c.ExcludeNodes[l.From] {
				continue // no transit through excluded nodes
			}
			if dist[l.From] == math.MaxInt {
				continue
			}
			if nd := dist[l.From] + l.Metric; nd < dist[l.To] {
				dist[l.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// TestCSPFMatchesReference: on random graphs under random constraints,
// CSPF distances equal the Bellman-Ford oracle, every returned path is
// walkable and constraint-clean, and its hop metrics sum to the claimed
// distance.
func TestCSPFMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		src := NodeID(rng.Intn(g.NumNodes()))
		c := randomConstraints(rng, g, src)

		res := g.CSPF(src, c)
		want := bellmanFord(g, src, c)

		for v := 0; v < g.NumNodes(); v++ {
			if res.Dist[v] != want[v] {
				t.Fatalf("seed %d: dist[%d] = %d, reference %d", seed, v, res.Dist[v], want[v])
			}
			if !res.Reachable(NodeID(v)) {
				if want[v] != math.MaxInt && NodeID(v) != src {
					t.Fatalf("seed %d: node %d reachable per reference but not CSPF", seed, v)
				}
				continue
			}
			path, ok := res.PathTo(g, NodeID(v))
			if !ok {
				t.Fatalf("seed %d: Reachable(%d) but no path", seed, v)
			}
			at, cost := src, 0
			for _, lid := range path.Links {
				l := g.Link(lid)
				if l.From != at {
					t.Fatalf("seed %d: path to %d broken at link %d (%d -> %d, at %d)",
						seed, v, lid, l.From, l.To, at)
				}
				if !linkEligible(l, lid, c) {
					t.Fatalf("seed %d: path to %d uses pruned link %d", seed, v, lid)
				}
				if at != src && c.ExcludeNodes[at] {
					t.Fatalf("seed %d: path to %d transits excluded node %d", seed, v, at)
				}
				at, cost = l.To, cost+l.Metric
			}
			if at != NodeID(v) || cost != res.Dist[v] {
				t.Fatalf("seed %d: path to %d ends at %d with cost %d (dist %d)",
					seed, v, at, cost, res.Dist[v])
			}
		}
	}
}

// TestCSPFBandwidthExclusion pins the admission-control property on its
// own: raising MinAvailableBw can only lose reachability and lengthen
// paths, never shorten them, and at a floor above every link's headroom
// nothing but the source remains.
func TestCSPFBandwidthExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng)
		src := NodeID(rng.Intn(g.NumNodes()))
		prev := g.CSPF(src, Constraints{})
		for bw := 100e6; bw <= 1100e6; bw += 200e6 {
			cur := g.CSPF(src, Constraints{MinAvailableBw: bw})
			for v := 0; v < g.NumNodes(); v++ {
				if cur.Dist[v] != math.MaxInt && cur.Dist[v] < prev.Dist[v] {
					t.Fatalf("trial %d bw %.0f: dist[%d] improved %d -> %d under a tighter floor",
						trial, bw, v, prev.Dist[v], cur.Dist[v])
				}
			}
			prev = cur
		}
		all := g.CSPF(src, Constraints{MinAvailableBw: 2e9})
		for v, d := range all.Dist {
			if NodeID(v) != src && d != math.MaxInt {
				t.Fatalf("trial %d: node %d reachable with an unsatisfiable floor", trial, v)
			}
		}
	}
}

// TestCSPFDeterministic: identical inputs give identical trees, including
// the tie-break links.
func TestCSPFDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng)
	src := NodeID(0)
	c := Constraints{MinAvailableBw: 300e6}
	a, b := g.CSPF(src, c), g.CSPF(src, c)
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] || a.Prev[v] != b.Prev[v] {
			t.Fatalf("node %d: (%d,%d) vs (%d,%d)", v, a.Dist[v], a.Prev[v], b.Dist[v], b.Prev[v])
		}
	}
}
