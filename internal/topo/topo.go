// Package topo models the provider backbone as a graph: routers connected
// by duplex links with bandwidth, propagation delay, and an IGP metric. It
// provides shortest-path-first (Dijkstra) computation for the IGP and
// constrained SPF (CSPF) — the resource-aware path selection the paper's
// §2.2 identifies as the missing piece in plain IP routing — for RSVP-TE.
package topo

import (
	"fmt"

	"mplsvpn/internal/sim"
)

// NodeID identifies a router in the topology. IDs are dense small integers
// assigned in creation order.
type NodeID int

// Invalid is the zero-value-adjacent sentinel for "no node".
const Invalid NodeID = -1

// Node is a router in the graph.
type Node struct {
	ID   NodeID
	Name string
}

// LinkID identifies one *directed* half of a duplex link.
type LinkID int

// Link is a directed edge. AddDuplexLink creates both directions with
// matching parameters; the two halves have independent state (utilization,
// reservation) because traffic and reservations are directional.
type Link struct {
	ID        LinkID
	From      NodeID
	To        NodeID
	Bandwidth float64  // bits per second
	Delay     sim.Time // propagation delay
	Metric    int      // IGP cost
	Down      bool     // administratively or failure down

	// ReservedBw is bandwidth claimed by RSVP-TE reservations (bits/s).
	ReservedBw float64
}

// AvailableBw returns the unreserved bandwidth on the link.
func (l *Link) AvailableBw() float64 { return l.Bandwidth - l.ReservedBw }

// Graph is the backbone topology. It is not safe for concurrent mutation;
// the simulator is single-threaded.
type Graph struct {
	nodes  []Node
	links  []Link
	out    [][]LinkID // adjacency: out[n] = links leaving n
	byName map[string]NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]NodeID)}
}

// AddNode creates a router with the given name. Names must be unique.
func (g *Graph) AddNode(name string) NodeID {
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("topo: duplicate node name %q", name))
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name})
	g.out = append(g.out, nil)
	g.byName[name] = id
	return id
}

// NodeByName looks a router up by name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Name returns the name of node n.
func (g *Graph) Name(n NodeID) string { return g.nodes[n].Name }

// NumNodes returns the number of routers.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// AddDuplexLink connects a and b in both directions with the same bandwidth
// (bits/s), propagation delay, and IGP metric. It returns the two directed
// link IDs (a→b, b→a).
func (g *Graph) AddDuplexLink(a, b NodeID, bandwidth float64, delay sim.Time, metric int) (LinkID, LinkID) {
	if metric <= 0 {
		panic("topo: IGP metric must be positive")
	}
	ab := g.addLink(a, b, bandwidth, delay, metric)
	ba := g.addLink(b, a, bandwidth, delay, metric)
	return ab, ba
}

func (g *Graph) addLink(from, to NodeID, bw float64, delay sim.Time, metric int) LinkID {
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{
		ID: id, From: from, To: to,
		Bandwidth: bw, Delay: delay, Metric: metric,
	})
	g.out[from] = append(g.out[from], id)
	return id
}

// Link returns a pointer to the directed link record (mutable: RSVP updates
// ReservedBw through it).
func (g *Graph) Link(id LinkID) *Link { return &g.links[id] }

// OutLinks returns the IDs of links leaving n.
func (g *Graph) OutLinks(n NodeID) []LinkID { return g.out[n] }

// FindLink returns the directed link from a to b, if any. With parallel
// links it returns the lowest-metric one.
func (g *Graph) FindLink(a, b NodeID) (*Link, bool) {
	var best *Link
	for _, id := range g.out[a] {
		l := &g.links[id]
		if l.To == b && (best == nil || l.Metric < best.Metric) {
			best = l
		}
	}
	return best, best != nil
}

// Reverse returns the opposite direction of link id, if present.
func (g *Graph) Reverse(id LinkID) (*Link, bool) {
	l := g.Link(id)
	return g.FindLink(l.To, l.From)
}

// SetLinkDown marks both directions between a and b as down (or up).
func (g *Graph) SetLinkDown(a, b NodeID, down bool) {
	for i := range g.links {
		l := &g.links[i]
		if (l.From == a && l.To == b) || (l.From == b && l.To == a) {
			l.Down = down
		}
	}
}

// Path is a sequence of directed links from a source to a destination.
type Path struct {
	Links []LinkID
}

// Nodes expands the path into the node sequence it visits.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p.Links) == 0 {
		return nil
	}
	out := []NodeID{g.Link(p.Links[0]).From}
	for _, id := range p.Links {
		out = append(out, g.Link(id).To)
	}
	return out
}

// Cost sums the IGP metrics along the path.
func (p Path) Cost(g *Graph) int {
	c := 0
	for _, id := range p.Links {
		c += g.Link(id).Metric
	}
	return c
}

// Delay sums the propagation delays along the path.
func (p Path) Delay(g *Graph) sim.Time {
	var d sim.Time
	for _, id := range p.Links {
		d += g.Link(id).Delay
	}
	return d
}

// String renders "A -> B -> C" using node names.
func (p Path) String(g *Graph) string {
	ns := p.Nodes(g)
	s := ""
	for i, n := range ns {
		if i > 0 {
			s += " -> "
		}
		s += g.Name(n)
	}
	return s
}
