package topo

import "sort"

// ClusterPEs groups the given edge routers into at most k proximity
// clusters for BGP route reflection: PEs that are topologically close share
// a cluster, so a reflector serves its own neighborhood and reflected
// updates stay regional. The grouping reuses Partition's deterministic
// k-way decomposition of the whole graph (zero-delay contraction, greedy
// k-center seeds, balanced BFS growth) and then buckets the PEs by region.
//
// Empty regions (containing no PE) are dropped, so the result may hold
// fewer than k clusters. Each cluster is sorted by node ID and clusters
// are ordered by their lowest member, making the output stable across
// runs for the same topology.
func ClusterPEs(g *Graph, pes []NodeID, k int) [][]NodeID {
	if len(pes) == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	part := Partition(g, k)
	byShard := make(map[int][]NodeID)
	for _, pe := range pes {
		s := part.Assign[pe]
		byShard[s] = append(byShard[s], pe)
	}
	clusters := make([][]NodeID, 0, len(byShard))
	for _, members := range byShard {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		clusters = append(clusters, members)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	return clusters
}
