// Multigraph of autonomous systems: the cross-provider path selector of
// the inter-AS layer. Each AS is a node carrying an abstracted view of its
// own core (a transit delay and capacity — "Topology Abstraction Service
// for IP VPNs" exports exactly this instead of the real topology), and each
// (peering link, inter-AS option) pair is a *distinct* parallel edge, as in
// the inter-IXP multigraph work: two providers peering in three places are
// three edges with independent failure fates, not one.
//
// Selection is a deterministic Dijkstra over AS hops; on boundary failure
// the caller flips the dead edges/ASes down and re-selects, and the diff of
// the two trees is what must be re-provisioned.
package topo

import "sort"

// MGNode is one AS in the multigraph with its abstracted internals.
type MGNode struct {
	Name string
	// TransitDelay abstracts the AS's interior crossing cost (seconds);
	// charged whenever a path enters *and leaves* the AS (pure transit).
	TransitDelay float64
	// Capacity abstracts the interior capacity floor (b/s), the most the
	// AS promises to carry in transit. Informational for scoring; not a
	// constraint the selector enforces.
	Capacity float64
	// Down marks the whole AS failed: no path may enter it.
	Down bool
}

// MGEdge is one peering interconnect between two ASes. Parallel edges
// between the same pair are distinct (different peering routers, different
// inter-AS options) and fail independently.
type MGEdge struct {
	ID   int // stable, assigned by AddEdge in call order
	A, B string
	// Delay is the boundary-crossing cost in seconds (link propagation
	// plus the option's processing overhead).
	Delay float64
	// Capacity is the peering link's bandwidth (b/s).
	Capacity float64
	// Down marks just this peering failed.
	Down bool
}

// Multigraph is the AS-level topology.
type Multigraph struct {
	nodes map[string]*MGNode
	order []string
	edges []*MGEdge
}

// NewMultigraph returns an empty AS-level topology.
func NewMultigraph() *Multigraph {
	return &Multigraph{nodes: make(map[string]*MGNode)}
}

// AddAS adds one AS node; duplicate names update the abstraction in place.
func (m *Multigraph) AddAS(name string, transitDelay, capacity float64) {
	if n, ok := m.nodes[name]; ok {
		n.TransitDelay, n.Capacity = transitDelay, capacity
		return
	}
	m.nodes[name] = &MGNode{Name: name, TransitDelay: transitDelay, Capacity: capacity}
	m.order = append(m.order, name)
}

// AddEdge adds one peering edge between two known ASes and returns its
// stable ID. Both endpoints must already exist.
func (m *Multigraph) AddEdge(a, b string, delay, capacity float64) int {
	if m.nodes[a] == nil || m.nodes[b] == nil {
		panic("topo: multigraph edge endpoint not added")
	}
	e := &MGEdge{ID: len(m.edges), A: a, B: b, Delay: delay, Capacity: capacity}
	m.edges = append(m.edges, e)
	return e.ID
}

// Edge returns the edge with the given ID.
func (m *Multigraph) Edge(id int) *MGEdge { return m.edges[id] }

// NumEdges returns the number of peering edges ever added.
func (m *Multigraph) NumEdges() int { return len(m.edges) }

// ASNames returns the AS names in insertion order.
func (m *Multigraph) ASNames() []string { return m.order }

// SetEdgeDown marks one peering edge failed or restored.
func (m *Multigraph) SetEdgeDown(id int, down bool) { m.edges[id].Down = down }

// SetASDown marks a whole AS failed or restored; its peering edges stay as
// they are (an AS outage and a fibre cut are independent failure axes).
func (m *Multigraph) SetASDown(name string, down bool) {
	if n, ok := m.nodes[name]; ok {
		n.Down = down
	}
}

// ASDown reports whether an AS is marked failed.
func (m *Multigraph) ASDown(name string) bool {
	n, ok := m.nodes[name]
	return ok && n.Down
}

// MGHop is one boundary crossing on a selected path.
type MGHop struct {
	EdgeID int
	From   string // AS the packet leaves
	To     string // AS the packet enters
}

// MGPath is a selected AS-level path.
type MGPath struct {
	Hops []MGHop
	// Delay is the total abstract cost: boundary delays plus transit
	// delays of every intermediate AS.
	Delay float64
}

// shortestTree computes the deterministic least-delay tree from origin:
// for every reachable AS, the (delay, parent hop) pair. Ties break on
// (delay, AS insertion order, edge ID) so same-topology selections are
// byte-identical run to run.
func (m *Multigraph) shortestTree(origin string) (dist map[string]float64, parent map[string]MGHop) {
	dist = make(map[string]float64)
	parent = make(map[string]MGHop)
	o, ok := m.nodes[origin]
	if !ok || o.Down {
		return dist, parent
	}
	dist[origin] = 0
	done := make(map[string]bool)
	for {
		// Extract-min by (dist, insertion order).
		cur, best := "", 0.0
		for _, name := range m.order {
			d, ok := dist[name]
			if !ok || done[name] {
				continue
			}
			if cur == "" || d < best {
				cur, best = name, d
			}
		}
		if cur == "" {
			return dist, parent
		}
		done[cur] = true
		// Leaving a non-origin AS in transit charges its interior crossing.
		transit := 0.0
		if cur != origin {
			transit = m.nodes[cur].TransitDelay
		}
		for _, e := range m.edges {
			if e.Down {
				continue
			}
			var to string
			switch cur {
			case e.A:
				to = e.B
			case e.B:
				to = e.A
			default:
				continue
			}
			if m.nodes[to].Down || done[to] {
				continue
			}
			nd := best + transit + e.Delay
			if d, ok := dist[to]; !ok || nd < d ||
				(nd == d && e.ID < parent[to].EdgeID) {
				dist[to] = nd
				parent[to] = MGHop{EdgeID: e.ID, From: cur, To: to}
			}
		}
	}
}

// SelectPath returns the least-delay AS path from origin to target over up
// edges and ASes, or ok=false when the providers are partitioned.
func (m *Multigraph) SelectPath(origin, target string) (MGPath, bool) {
	dist, parent := m.shortestTree(origin)
	d, ok := dist[target]
	if !ok || target == origin {
		return MGPath{}, ok && target == origin
	}
	var rev []MGHop
	for at := target; at != origin; {
		h, ok := parent[at]
		if !ok {
			return MGPath{}, false
		}
		rev = append(rev, h)
		at = h.From
	}
	hops := make([]MGHop, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		hops = append(hops, rev[i])
	}
	return MGPath{Hops: hops, Delay: d}, true
}

// SelectTree returns the least-delay path from origin to every other
// reachable AS, keyed by destination, in one Dijkstra pass — the unit the
// inter-AS layer reconciles per (VPN, origin AS).
func (m *Multigraph) SelectTree(origin string) map[string]MGPath {
	dist, parent := m.shortestTree(origin)
	out := make(map[string]MGPath, len(dist))
	for _, name := range m.order {
		if name == origin {
			continue
		}
		if _, ok := dist[name]; !ok {
			continue
		}
		if p, ok := m.pathFromTree(origin, name, dist, parent); ok {
			out[name] = p
		}
	}
	return out
}

func (m *Multigraph) pathFromTree(origin, target string, dist map[string]float64, parent map[string]MGHop) (MGPath, bool) {
	var rev []MGHop
	for at := target; at != origin; {
		h, ok := parent[at]
		if !ok {
			return MGPath{}, false
		}
		rev = append(rev, h)
		at = h.From
	}
	hops := make([]MGHop, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		hops = append(hops, rev[i])
	}
	return MGPath{Hops: hops, Delay: dist[target]}, true
}

// EdgesBetween returns the IDs of every edge (up or down) between two ASes,
// sorted — the parallel-edge inventory a failover report enumerates.
func (m *Multigraph) EdgesBetween(a, b string) []int {
	var out []int
	for _, e := range m.edges {
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			out = append(out, e.ID)
		}
	}
	sort.Ints(out)
	return out
}
