package topo

import (
	"container/heap"
	"math"
)

// IncrementalSPF maintains a CSPF result across single-link events without
// recomputing the whole tree. It implements the dynamic-SSSP scheme of
// Ramalingam–Reps: an improved edge triggers a bounded Dijkstra forward
// from its head, a worsened edge first identifies the affected region
// (nodes whose distance can no longer be certified by an unaffected
// in-edge) and then re-settles only that region from its boundary.
//
// The maintained result is canonical: after every ApplyLinkChange, Dist and
// Prev are exactly what Graph.CSPF would compute from scratch on the
// current graph — including the lowest-link-ID tie-break among equal-cost
// in-edges — so callers can swap between the two freely. The property tests
// in ispf_test.go enforce this equivalence across random flap sequences.
//
// The caller owns change notification: after mutating a link's Down flag,
// Metric, or reservation state (when MinAvailableBw constraints apply),
// call ApplyLinkChange with the affected directed link. Changes the
// tracker is not told about leave it stale until Rebuild.
type IncrementalSPF struct {
	g   *Graph
	src NodeID
	c   Constraints
	res *SPFResult

	// in[v] lists the directed links entering v; refreshed when the graph
	// has grown since the last (re)build.
	in    [][]LinkID
	links int

	// FullRuns counts from-scratch recomputes (construction, Rebuild, and
	// topology-growth fallbacks); IncrementalRuns counts delta updates.
	FullRuns        int
	IncrementalRuns int

	// affected marks the shrink-phase region; cleared after each update.
	affected []bool
}

// NewIncrementalSPF computes the initial tree with a full CSPF run.
func NewIncrementalSPF(g *Graph, src NodeID, c Constraints) *IncrementalSPF {
	s := &IncrementalSPF{g: g, src: src, c: c}
	s.Rebuild()
	return s
}

// Result returns the live tree. The caller must not mutate it; it is
// updated in place by ApplyLinkChange and replaced by Rebuild.
func (s *IncrementalSPF) Result() *SPFResult { return s.res }

// Rebuild recomputes the tree from scratch — the fallback for events wider
// than a single link (node crashes, bulk reservation shifts, graph growth).
func (s *IncrementalSPF) Rebuild() {
	s.res = s.g.CSPF(s.src, s.c)
	s.buildIndex()
	s.FullRuns++
}

func (s *IncrementalSPF) buildIndex() {
	n := s.g.NumNodes()
	s.in = make([][]LinkID, n)
	for i := 0; i < s.g.NumLinks(); i++ {
		l := s.g.Link(LinkID(i))
		s.in[l.To] = append(s.in[l.To], LinkID(i))
	}
	s.links = s.g.NumLinks()
	s.affected = make([]bool, n)
}

// eligible mirrors CSPF's link pruning: down links, excluded links,
// bandwidth-starved links, and links leaving an excluded transit node are
// invisible (the source relaxes even when excluded, as in CSPF).
func (s *IncrementalSPF) eligible(lid LinkID, l *Link) bool {
	if l.Down || s.c.ExcludeLinks[lid] {
		return false
	}
	if s.c.MinAvailableBw > 0 && l.AvailableBw() < s.c.MinAvailableBw {
		return false
	}
	if s.c.ExcludeNodes[l.From] && l.From != s.src {
		return false
	}
	return true
}

// certify returns the best distance v can claim through its current
// in-edges, and the lowest link ID achieving it — the canonical Prev.
func (s *IncrementalSPF) certify(v NodeID) (int, LinkID) {
	best, bestLid := math.MaxInt, LinkID(-1)
	for _, lid := range s.in[v] {
		l := s.g.Link(lid)
		if !s.eligible(lid, l) {
			continue
		}
		du := s.res.Dist[l.From]
		if du == math.MaxInt {
			continue
		}
		nd := du + l.Metric
		if nd < best || (nd == best && lid < bestLid) {
			best, bestLid = nd, lid
		}
	}
	return best, bestLid
}

// ApplyLinkChange folds one directed link's state change (Down flag,
// metric, or bandwidth eligibility) into the tree. Both halves of a duplex
// flap need their own call. Safe to call when nothing actually changed.
func (s *IncrementalSPF) ApplyLinkChange(lid LinkID) {
	if s.g.NumLinks() != s.links || len(s.affected) != s.g.NumNodes() {
		// The graph grew since the last build; indexes are stale.
		s.Rebuild()
		return
	}
	v := s.g.Link(lid).To
	if v == s.src {
		// Dist[src] is pinned at 0 and Prev[src] at -1; an in-edge to the
		// source never changes the tree (metrics are strictly positive).
		return
	}
	s.IncrementalRuns++
	cert, certLid := s.certify(v)
	switch {
	case cert == s.res.Dist[v]:
		// Distance unchanged; only the tie-break may have moved.
		s.res.Prev[v] = certLid
	case cert < s.res.Dist[v]:
		s.grow(v, cert, certLid)
	default:
		s.shrink(v)
	}
}

// grow handles an improvement at v: bounded Dijkstra forward. Only nodes
// whose distance strictly improves are re-settled; unchanged neighbors of
// improved nodes get their Prev tie-break refreshed in place, because an
// improved in-neighbor can create a new equal-cost in-edge with a lower
// link ID (old optimality guarantees it can never destroy one).
func (s *IncrementalSPF) grow(v NodeID, dist int, via LinkID) {
	res := s.res
	res.Dist[v], res.Prev[v] = dist, via
	h := &spfHeap{}
	heap.Push(h, &spfItem{node: v, dist: dist})
	for h.Len() > 0 {
		it := heap.Pop(h).(*spfItem)
		u := it.node
		if it.dist > res.Dist[u] {
			continue // superseded by a later improvement
		}
		if s.c.ExcludeNodes[u] && u != s.src {
			continue
		}
		for _, olid := range s.g.OutLinks(u) {
			l := s.g.Link(olid)
			if !s.eligible(olid, l) {
				continue
			}
			w := l.To
			if w == s.src {
				continue
			}
			nd := res.Dist[u] + l.Metric
			if nd < res.Dist[w] {
				res.Dist[w], res.Prev[w] = nd, olid
				heap.Push(h, &spfItem{node: w, dist: nd})
			} else if nd == res.Dist[w] && olid < res.Prev[w] {
				res.Prev[w] = olid
			}
		}
	}
}

// shrink handles a degradation at v. Phase 1 floods the affected region:
// a node joins when every in-edge that certified its distance comes from a
// node already in the region. Nodes that keep an unaffected certificate
// only refresh their Prev tie-break. Phase 2 resets the region to
// unreachable, seeds each member with its best boundary in-edge, and runs
// Dijkstra restricted to the region — unaffected distances are already
// optimal (a degradation never improves anyone) and stay untouched.
func (s *IncrementalSPF) shrink(v NodeID) {
	res := s.res
	aff := []NodeID{v}
	s.affected[v] = true
	for i := 0; i < len(aff); i++ {
		u := aff[i]
		if s.c.ExcludeNodes[u] && u != s.src {
			continue
		}
		for _, olid := range s.g.OutLinks(u) {
			l := s.g.Link(olid)
			if !s.eligible(olid, l) {
				continue
			}
			w := l.To
			if w == s.src || s.affected[w] || res.Dist[w] == math.MaxInt {
				continue
			}
			if res.Dist[u]+l.Metric != res.Dist[w] {
				continue // u never supported w's distance
			}
			cert, certLid := s.certifyUnaffected(w)
			if cert == res.Dist[w] {
				res.Prev[w] = certLid
			} else {
				s.affected[w] = true
				aff = append(aff, w)
			}
		}
	}

	h := &spfHeap{}
	for _, u := range aff {
		res.Dist[u], res.Prev[u] = math.MaxInt, -1
	}
	for _, u := range aff {
		// certify sees affected sources as unreachable now, so this is the
		// best boundary (unaffected) in-edge.
		cert, certLid := s.certify(u)
		if cert < math.MaxInt {
			res.Dist[u], res.Prev[u] = cert, certLid
			heap.Push(h, &spfItem{node: u, dist: cert})
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(*spfItem)
		u := it.node
		if it.dist > res.Dist[u] {
			continue
		}
		if s.c.ExcludeNodes[u] && u != s.src {
			continue
		}
		for _, olid := range s.g.OutLinks(u) {
			l := s.g.Link(olid)
			if !s.eligible(olid, l) {
				continue
			}
			w := l.To
			if !s.affected[w] {
				continue // boundary distances are already optimal
			}
			nd := res.Dist[u] + l.Metric
			if nd < res.Dist[w] {
				res.Dist[w], res.Prev[w] = nd, olid
				heap.Push(h, &spfItem{node: w, dist: nd})
			} else if nd == res.Dist[w] && olid < res.Prev[w] {
				res.Prev[w] = olid
			}
		}
	}
	for _, u := range aff {
		s.affected[u] = false
	}
}

// certifyUnaffected is certify restricted to sources outside the affected
// region being flooded in shrink's first phase.
func (s *IncrementalSPF) certifyUnaffected(v NodeID) (int, LinkID) {
	best, bestLid := math.MaxInt, LinkID(-1)
	for _, lid := range s.in[v] {
		l := s.g.Link(lid)
		if s.affected[l.From] || !s.eligible(lid, l) {
			continue
		}
		du := s.res.Dist[l.From]
		if du == math.MaxInt {
			continue
		}
		nd := du + l.Metric
		if nd < best || (nd == best && lid < bestLid) {
			best, bestLid = nd, lid
		}
	}
	return best, bestLid
}
