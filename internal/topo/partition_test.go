package topo

import (
	"fmt"
	"reflect"
	"testing"

	"mplsvpn/internal/sim"
)

// buildBackboneGraph makes a 4-PE / 2-P core with per-PE access chains:
// CE nodes on 1ms access links and hosts on zero-delay LAN links (the
// edges a partition must never cut).
func buildBackboneGraph() *Graph {
	g := New()
	pes := make([]NodeID, 4)
	for i := range pes {
		pes[i] = g.AddNode(fmt.Sprintf("PE%d", i))
	}
	p1 := g.AddNode("P1")
	p2 := g.AddNode("P2")
	g.AddDuplexLink(pes[0], p1, 10e9, 2*sim.Millisecond, 1)
	g.AddDuplexLink(pes[1], p1, 10e9, 2*sim.Millisecond, 1)
	g.AddDuplexLink(pes[2], p2, 10e9, 2*sim.Millisecond, 1)
	g.AddDuplexLink(pes[3], p2, 10e9, 2*sim.Millisecond, 1)
	g.AddDuplexLink(p1, p2, 40e9, 5*sim.Millisecond, 1)
	for i, pe := range pes {
		ce := g.AddNode(fmt.Sprintf("CE%d", i))
		g.AddDuplexLink(pe, ce, 100e6, sim.Millisecond, 1)
		h := g.AddNode(fmt.Sprintf("H%d", i))
		g.AddDuplexLink(ce, h, 1e9, 0, 1) // zero-delay LAN edge
	}
	return g
}

func TestPartitionInvariants(t *testing.T) {
	g := buildBackboneGraph()
	for _, k := range []int{1, 2, 4, 8} {
		pr := Partition(g, k)
		if err := pr.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if pr.NumShards > k {
			t.Errorf("k=%d produced %d shards", k, pr.NumShards)
		}
		// Hosts stay with their CE (the zero-delay contraction).
		for i := 0; i < 4; i++ {
			ce, _ := g.NodeByName(fmt.Sprintf("CE%d", i))
			h, _ := g.NodeByName(fmt.Sprintf("H%d", i))
			if pr.Assign[ce] != pr.Assign[h] {
				t.Errorf("k=%d: host H%d split from CE%d", k, i, i)
			}
		}
		if pr.CutLinks > 0 && pr.MinCutDelay < sim.Millisecond {
			t.Errorf("k=%d: min cut delay %v below the smallest positive link delay", k, pr.MinCutDelay)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g1 := buildBackboneGraph()
	g2 := buildBackboneGraph()
	a := Partition(g1, 4)
	b := Partition(g2, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same graph, different partitions:\n%+v\n%+v", a, b)
	}
}

func TestPartitionBalance(t *testing.T) {
	// A 32-node ring splits 4 ways into regions of 8±1.
	g := New()
	nodes := make([]NodeID, 32)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("R%d", i))
	}
	for i := range nodes {
		g.AddDuplexLink(nodes[i], nodes[(i+1)%32], 10e9, sim.Millisecond, 1)
	}
	pr := Partition(g, 4)
	if pr.NumShards != 4 {
		t.Fatalf("shards=%d, want 4", pr.NumShards)
	}
	counts := make([]int, 4)
	for _, s := range pr.Assign {
		counts[s]++
	}
	for s, c := range counts {
		if c < 6 || c > 10 {
			t.Errorf("shard %d holds %d of 32 ring nodes (want ~8): %v", s, c, counts)
		}
	}
}

func TestPartitionSingleShard(t *testing.T) {
	g := buildBackboneGraph()
	pr := Partition(g, 1)
	if pr.NumShards != 1 || pr.CutLinks != 0 {
		t.Fatalf("k=1: shards=%d cut=%d", pr.NumShards, pr.CutLinks)
	}
	if pr.MinCutDelay != sim.MaxTime {
		t.Errorf("no cut links but MinCutDelay=%v", pr.MinCutDelay)
	}
}

func TestPartitionMoreShardsThanComponents(t *testing.T) {
	// 3 supernodes (CE+H pairs contracted) can fill at most 3 shards.
	g := New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	h := g.AddNode("H")
	g.AddDuplexLink(a, b, 1e9, sim.Millisecond, 1)
	g.AddDuplexLink(b, c, 1e9, sim.Millisecond, 1)
	g.AddDuplexLink(c, h, 1e9, 0, 1)
	pr := Partition(g, 16)
	if pr.NumShards > 3 {
		t.Fatalf("3 supernodes but %d shards", pr.NumShards)
	}
	if err := pr.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDisconnected(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		a := g.AddNode(fmt.Sprintf("a%d", i))
		b := g.AddNode(fmt.Sprintf("b%d", i))
		g.AddDuplexLink(a, b, 1e9, sim.Millisecond, 1)
	}
	pr := Partition(g, 2)
	if err := pr.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Every island is intact on some shard; none is lost.
	for i := 0; i < 6; i++ {
		if pr.Assign[i] < 0 || pr.Assign[i] >= pr.NumShards {
			t.Fatalf("node %d unassigned: %v", i, pr.Assign)
		}
	}
}

func TestPartitionEmptyGraph(t *testing.T) {
	pr := Partition(New(), 4)
	if pr.NumShards != 1 || len(pr.Assign) != 0 {
		t.Fatalf("empty graph: %+v", pr)
	}
}
