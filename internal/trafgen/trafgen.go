// Package trafgen synthesizes the customer workloads of the experiments:
// constant-bit-rate voice, Poisson data, exponential on-off sources, and a
// greedy AIMD bulk transfer that probes for bandwidth the way TCP does.
// These stand in for the production traffic the paper's provider would
// carry (a documented substitution — see DESIGN.md).
package trafgen

import (
	"math"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/netsim"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/snapshot"
	"mplsvpn/internal/stats"
	"mplsvpn/internal/topo"
)

// Flow describes one traffic stream: where it enters the network, its
// addressing, and where its statistics accumulate.
type Flow struct {
	Name     string
	At       topo.NodeID // injection node (host/CE)
	VPN      string      // origin VPN recorded on packets (isolation checks)
	Src, Dst addr.IPv4
	SrcPort  uint16
	DstPort  uint16
	Proto    uint8
	DSCP     packet.DSCP // pre-marked DSCP (0 when the CE classifier marks)
	Stats    *stats.FlowStats

	seq uint64
}

// NewFlow builds a flow with fresh statistics.
func NewFlow(name string, at topo.NodeID, src, dst addr.IPv4, dstPort uint16) *Flow {
	return &Flow{
		Name: name, At: at, Src: src, Dst: dst,
		SrcPort: 40000, DstPort: dstPort, Proto: packet.ProtoUDP,
		Stats: &stats.FlowStats{Name: name},
	}
}

// Packet materializes the next packet of the flow as a fresh allocation.
// Steady-state senders go through fill + the network's packet pool instead;
// Packet remains for probes and tests that outlive delivery.
func (f *Flow) Packet(payload int) *packet.Packet {
	return f.fill(&packet.Packet{}, payload)
}

// fill stamps the flow's headers onto a (possibly recycled) packet.
func (f *Flow) fill(p *packet.Packet, payload int) *packet.Packet {
	f.seq++
	p.IP = packet.IPv4Header{
		DSCP: f.DSCP, TTL: 64, Protocol: f.Proto,
		Src: f.Src, Dst: f.Dst,
	}
	p.L4 = packet.L4Header{SrcPort: f.SrcPort, DstPort: f.DstPort}
	p.Payload = payload
	p.Seq = f.seq
	p.OriginVPN = f.VPN
	return p
}

// send injects one packet, drawn from the network's pool, and records it.
// The pool recycles it at delivery or drop, so a long-running source
// recirculates a handful of packets instead of allocating one per send.
func (f *Flow) send(n *netsim.Network, payload int) {
	f.Stats.RecordSent()
	n.Inject(f.At, f.fill(n.NewPacket(f.At), payload))
}

// Source is a self-rescheduling traffic generator whose pacing state can be
// checkpointed. The concrete sources implement sim.Action — the pending
// repost in the event heap is the source itself, which is what lets a
// snapshot identify in-flight generator events and re-arm them after a
// restore (register sources with core's RegisterSource for that).
type Source interface {
	sim.Action
	SaveState(w *snapshot.Writer)
	LoadState(r *snapshot.Reader) error
}

// CBR emits fixed-size packets at a fixed interval from start until stop:
// the voice workload (e.g. 160-byte G.711 frames every 20 ms). The source
// paces itself on the clock of the injection node's shard, so a sharded
// run keeps every flow's schedule inside its own partition.
func CBR(n *netsim.Network, f *Flow, payload int, interval, start, stop sim.Time) Source {
	s := &cbrSrc{n: n, f: f, clk: n.SourceClock(f.At), payload: payload,
		interval: interval, stop: stop, t: start}
	if start <= stop {
		s.clk.Post(start, s)
	}
	return s
}

// cbrSrc is a self-rescheduling sim.Action: one struct per source, reposted
// on a pooled event every tick, so the steady state allocates nothing.
type cbrSrc struct {
	n              *netsim.Network
	f              *Flow
	clk            sim.Clock
	payload        int
	interval, stop sim.Time
	t              sim.Time
}

func (s *cbrSrc) Run() {
	s.f.send(s.n, s.payload)
	s.t += s.interval
	if s.t <= s.stop {
		s.clk.Post(s.t, s)
	}
}

// Poisson emits fixed-size packets with exponential interarrivals at the
// given mean rate (packets/second): the classic data-traffic model.
func Poisson(n *netsim.Network, f *Flow, payload int, pktPerSec float64, start, stop sim.Time, rng *sim.Rand) Source {
	s := &poissonSrc{n: n, f: f, clk: n.SourceClock(f.At), payload: payload,
		rate: pktPerSec, stop: stop, rng: rng, t: start}
	if start <= stop {
		s.clk.Post(start, s)
	}
	return s
}

type poissonSrc struct {
	n       *netsim.Network
	f       *Flow
	clk     sim.Clock
	payload int
	rate    float64
	stop    sim.Time
	rng     *sim.Rand
	t       sim.Time
}

func (s *poissonSrc) Run() {
	s.f.send(s.n, s.payload)
	gap := sim.Time(s.rng.ExpFloat64() / s.rate * float64(sim.Second))
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	s.t += gap
	if s.t <= s.stop {
		s.clk.Post(s.t, s)
	}
}

// OnOff emits CBR bursts during exponentially distributed on-periods
// separated by exponential off-periods: a talkspurt/silence voice model or
// a bursty data source.
func OnOff(n *netsim.Network, f *Flow, payload int, interval, meanOn, meanOff, start, stop sim.Time, rng *sim.Rand) Source {
	s := &onOffSrc{n: n, f: f, clk: n.SourceClock(f.At), payload: payload,
		interval: interval, meanOn: meanOn, meanOff: meanOff, stop: stop,
		rng: rng, t: start}
	s.clk.Post(start, s)
	return s
}

// onOffSrc alternates between two self-rescheduling states: a burst-start
// event (draw the on-duration, then post the first send at the same
// timestamp, mirroring the closure version's event pattern) and per-packet
// send events until the burst ends, when it draws the off-gap.
type onOffSrc struct {
	n                         *netsim.Network
	f                         *Flow
	clk                       sim.Clock
	payload                   int
	interval, meanOn, meanOff sim.Time
	stop, end, t              sim.Time
	rng                       *sim.Rand
	inBurst                   bool
}

func (s *onOffSrc) Run() {
	if !s.inBurst {
		if s.t > s.stop {
			return
		}
		onDur := sim.Time(s.rng.ExpFloat64() * float64(s.meanOn))
		s.end = s.t + onDur
		s.inBurst = true
		s.clk.Post(s.t, s)
		return
	}
	s.f.send(s.n, s.payload)
	s.t += s.interval
	if s.t > s.end || s.t > s.stop {
		// Off period, then the next burst.
		off := sim.Time(s.rng.ExpFloat64() * float64(s.meanOff))
		s.inBurst = false
		if s.t+off <= s.stop {
			s.t += off
			s.clk.Post(s.t, s)
		}
		return
	}
	s.clk.Post(s.t, s)
}

// AIMD is a greedy window-based bulk source modeled on TCP Reno: slow
// start grows the window by one packet per ack until the slow-start
// threshold, congestion avoidance by one packet per window's worth of
// acks above it; a detected drop halves the threshold and resumes there
// (fast recovery), and an RTO probe that finds traffic outstanding with
// no acks since the last probe collapses the window back to one packet.
// Deliveries and drops are fed back by the harness via Ack and Loss.
//
// AIMD is closed-loop with zero lookahead (an ack can trigger an injection
// at the same instant), so under a sharded engine it runs on the global
// band and reacts at barrier granularity: behaviour stays deterministic
// for a fixed shard count but is not byte-identical to the serial engine.
//
// Unlike the old closure-per-fill design, AIMD keeps exactly one event of
// its own in the heap — the periodic RTO probe, carried by the source
// itself as a sim.Action — so it satisfies Source and checkpoints like
// any paced generator: cwnd, ssthresh, and the ack ledger serialize, and
// the pending probe re-arms through core's source registry.
type AIMD struct {
	Flow    *Flow
	Net     *netsim.Network
	Payload int
	Stop    sim.Time
	RTO     sim.Time // retransmission-timeout stand-in: paces loss detection

	window   float64 // congestion window (cwnd), packets
	ssthresh float64 // slow-start threshold, packets
	inFlight int
	acked    uint64
	probed   uint64 // acked as of the previous RTO probe
}

// NewAIMD creates a bulk source with an initial window of 2 packets and
// the slow-start threshold out of the way.
func NewAIMD(n *netsim.Network, f *Flow, payload int, stop sim.Time) *AIMD {
	return &AIMD{
		Flow: f, Net: n, Payload: payload, Stop: stop,
		RTO: 200 * sim.Millisecond, window: 2, ssthresh: math.Inf(1),
	}
}

// Start begins transmission at the given time.
func (a *AIMD) Start(at sim.Time) {
	a.Net.E.Post(at, a)
}

// Run is the RTO probe: if a full RTO passed with packets outstanding and
// nothing acked, the transfer has stalled — collapse to slow start. Either
// way it tops up the window and re-arms itself until the stop time.
func (a *AIMD) Run() {
	if a.Net.E.Now() > a.Stop {
		return
	}
	if a.acked == a.probed && a.inFlight > 0 {
		a.ssthresh = a.window / 2
		if a.ssthresh < 2 {
			a.ssthresh = 2
		}
		a.window = 1
	}
	a.probed = a.acked
	a.fill()
	a.Net.E.PostAfter(a.RTO, a)
}

// fill tops the in-flight count up to the window.
func (a *AIMD) fill() {
	if a.Net.E.Now() > a.Stop {
		return
	}
	for a.inFlight < int(a.window) {
		a.inFlight++
		a.Flow.send(a.Net, a.Payload)
	}
}

// Ack records a delivered packet: exponential growth in slow start,
// additive increase above the threshold.
func (a *AIMD) Ack() {
	a.acked++
	if a.inFlight > 0 {
		a.inFlight--
	}
	if a.window < a.ssthresh {
		a.window++
	} else {
		a.window += 1 / a.window
	}
	a.fill()
}

// Loss records a lost packet: multiplicative decrease, resuming at the
// new threshold (fast recovery).
func (a *AIMD) Loss() {
	if a.inFlight > 0 {
		a.inFlight--
	}
	a.ssthresh = a.window / 2
	if a.ssthresh < 2 {
		a.ssthresh = 2
	}
	a.window = a.ssthresh
	if a.window < 1 {
		a.window = 1
	}
	a.fill()
}

// Window exposes the current congestion window (for tests).
func (a *AIMD) Window() float64 { return a.window }

// Ssthresh exposes the slow-start threshold (for tests).
func (a *AIMD) Ssthresh() float64 { return a.ssthresh }
