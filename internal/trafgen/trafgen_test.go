package trafgen

import (
	"math"
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/device"
	"mplsvpn/internal/netsim"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
)

// sinkNet builds a one-node network that delivers everything locally.
func sinkNet() (*netsim.Network, topo.NodeID) {
	e := sim.NewEngine(7)
	g := topo.New()
	a := g.AddNode("A")
	n := netsim.New(e, g)
	r := device.New(a, "A", device.CE, addr.MustParseIPv4("10.255.0.0"))
	r.LocalPrefixes = addr.NewTable[bool]()
	r.LocalPrefixes.Insert(addr.Prefix{}, true) // deliver everything
	n.AddRouter(r)
	return n, a
}

func testFlow(at topo.NodeID) *Flow {
	return NewFlow("f", at,
		addr.MustParseIPv4("10.1.0.1"), addr.MustParseIPv4("10.2.0.1"), 5060)
}

func TestCBRCountAndSpacing(t *testing.T) {
	n, a := sinkNet()
	f := testFlow(a)
	CBR(n, f, 160, 20*sim.Millisecond, 0, sim.Second)
	n.Run()
	// t=0..1s inclusive at 20ms spacing = 51 packets.
	if f.Stats.Sent != 51 {
		t.Fatalf("sent = %d, want 51", f.Stats.Sent)
	}
	if n.Delivered != 51 {
		t.Fatalf("delivered = %d", n.Delivered)
	}
}

func TestCBRSequenceNumbers(t *testing.T) {
	n, a := sinkNet()
	f := testFlow(a)
	var seqs []uint64
	n.OnDeliver = func(_ topo.NodeID, p *packet.Packet) { seqs = append(seqs, p.Seq) }
	CBR(n, f, 160, 10*sim.Millisecond, 0, 100*sim.Millisecond)
	n.Run()
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, s)
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	n, a := sinkNet()
	f := testFlow(a)
	rng := sim.NewRand(42)
	Poisson(n, f, 500, 1000, 0, 10*sim.Second, rng)
	n.Run()
	// ~10000 packets expected; allow 5%.
	if math.Abs(float64(f.Stats.Sent)-10000) > 500 {
		t.Fatalf("poisson sent = %d, want ~10000", f.Stats.Sent)
	}
}

func TestOnOffProducesBurstsAndGaps(t *testing.T) {
	n, a := sinkNet()
	f := testFlow(a)
	rng := sim.NewRand(3)
	var times []sim.Time
	n.OnDeliver = func(topo.NodeID, *packet.Packet) { times = append(times, n.E.Now()) }
	OnOff(n, f, 160, 10*sim.Millisecond, 200*sim.Millisecond, 300*sim.Millisecond, 0, 5*sim.Second, rng)
	n.Run()
	if len(times) < 20 {
		t.Fatalf("on-off produced only %d packets", len(times))
	}
	// Distinguishable bursts: some gaps well above the 10ms tick.
	bigGaps := 0
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] > 50*sim.Millisecond {
			bigGaps++
		}
	}
	if bigGaps == 0 {
		t.Fatal("no off-periods observed")
	}
	// Average rate strictly below always-on CBR rate.
	alwaysOn := int(5 * sim.Second / (10 * sim.Millisecond))
	if f.Stats.Sent >= alwaysOn {
		t.Fatalf("on-off sent %d >= always-on %d", f.Stats.Sent, alwaysOn)
	}
}

func TestFlowPacketFields(t *testing.T) {
	f := testFlow(0)
	f.VPN = "acme"
	f.DSCP = packet.DSCPEF
	p := f.Packet(99)
	if p.IP.Src != f.Src || p.IP.Dst != f.Dst || p.L4.DstPort != 5060 {
		t.Fatalf("packet fields wrong: %+v", p)
	}
	if p.OriginVPN != "acme" || p.IP.DSCP != packet.DSCPEF || p.Payload != 99 {
		t.Fatalf("metadata wrong: %+v", p)
	}
}

func TestAIMDGrowsAndBacksOff(t *testing.T) {
	n, a := sinkNet()
	f := testFlow(a)
	g := NewAIMD(n, f, 1000, 10*sim.Second)
	w0 := g.Window()
	for i := 0; i < 50; i++ {
		g.Ack()
	}
	if g.Window() <= w0 {
		t.Fatalf("window did not grow: %v", g.Window())
	}
	grown := g.Window()
	g.Loss()
	if w := g.Window(); math.Abs(w-grown/2) > 1e-9 {
		t.Fatalf("window after loss = %v, want %v", w, grown/2)
	}
	// Window floors at 1.
	for i := 0; i < 20; i++ {
		g.Loss()
	}
	if g.Window() < 1 {
		t.Fatalf("window fell below 1: %v", g.Window())
	}
}

func TestAIMDKeepsWindowInFlight(t *testing.T) {
	n, a := sinkNet()
	f := testFlow(a)
	g := NewAIMD(n, f, 1000, sim.Second)
	g.Start(0)
	n.E.RunUntil(1 * sim.Millisecond)
	if f.Stats.Sent != 2 { // initial window
		t.Fatalf("initial burst = %d, want 2", f.Stats.Sent)
	}
	g.Ack()
	g.Ack()
	if f.Stats.Sent <= 2 {
		t.Fatal("acks did not trigger more sends")
	}
}
