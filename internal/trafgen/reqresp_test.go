package trafgen

import (
	"testing"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
)

func TestReqRespRoundTrip(t *testing.T) {
	n, a := sinkNet()
	client := NewFlow("req", a,
		addr.MustParseIPv4("10.1.0.1"), addr.MustParseIPv4("10.2.0.1"), 9000)
	server := NewFlow("resp", a,
		addr.MustParseIPv4("10.2.0.1"), addr.MustParseIPv4("10.1.0.1"), 9001)
	rr := NewReqResp(n, client, server, 500)

	// Every delivery (the sink node delivers everything) feeds the
	// exchange, as core's OnDeliver hook would.
	n.OnDeliver = func(_ topo.NodeID, p *packet.Packet) { rr.HandleDelivery(p) }

	rr.SendRequests(100, 10*sim.Millisecond, 0, 200*sim.Millisecond)
	n.Run()

	if rr.Completed != 21 {
		t.Fatalf("completed = %d, want 21", rr.Completed)
	}
	if rr.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", rr.Outstanding())
	}
	if rr.RTT.Count() != 21 {
		t.Fatalf("RTT samples = %d", rr.RTT.Count())
	}
	if rr.Req.Stats.Sent != 21 || rr.Resp.Flow.Stats.Sent != 21 {
		t.Fatalf("sent counts: req=%d resp=%d", rr.Req.Stats.Sent, rr.Resp.Flow.Stats.Sent)
	}
}

func TestReqRespIgnoresForeignPackets(t *testing.T) {
	n, a := sinkNet()
	client := NewFlow("req", a,
		addr.MustParseIPv4("10.1.0.1"), addr.MustParseIPv4("10.2.0.1"), 9000)
	server := NewFlow("resp", a,
		addr.MustParseIPv4("10.2.0.1"), addr.MustParseIPv4("10.1.0.1"), 9001)
	rr := NewReqResp(n, client, server, 500)
	foreign := &packet.Packet{
		IP: packet.IPv4Header{Src: addr.MustParseIPv4("9.9.9.9"), Dst: addr.MustParseIPv4("8.8.8.8")},
		L4: packet.L4Header{SrcPort: 1, DstPort: 2},
	}
	if rr.HandleDelivery(foreign) {
		t.Fatal("foreign packet claimed")
	}
	if rr.Completed != 0 {
		t.Fatal("phantom completion")
	}
}
