package trafgen

import (
	"mplsvpn/internal/sim"
	"mplsvpn/internal/snapshot"
)

// SaveState serializes the flow's dynamic state: the packet sequence number
// and the accumulated statistics. Addressing is scenario configuration.
func (f *Flow) SaveState(w *snapshot.Writer) {
	w.U64(f.seq)
	f.Stats.SaveState(w)
}

// LoadState replaces the flow's dynamic state.
func (f *Flow) LoadState(r *snapshot.Reader) error {
	f.seq = r.U64()
	return f.Stats.LoadState(r)
}

// The sources serialize their pacing cursor and the state of their private
// random stream; rates, intervals, and endpoints are construction arguments
// the scenario rebuild supplies (the rebuilt source holds an equally-forked
// stream whose state the load then overwrites).

func (s *cbrSrc) SaveState(w *snapshot.Writer) { w.I64(int64(s.t)) }

func (s *cbrSrc) LoadState(r *snapshot.Reader) error {
	s.t = sim.Time(r.I64())
	return r.Err()
}

func (s *poissonSrc) SaveState(w *snapshot.Writer) {
	w.I64(int64(s.t))
	w.U64(s.rng.State())
}

func (s *poissonSrc) LoadState(r *snapshot.Reader) error {
	s.t = sim.Time(r.I64())
	s.rng.SetState(r.U64())
	return r.Err()
}

// AIMD serializes its full congestion state — cwnd, ssthresh, the
// in-flight count, and the ack ledger the RTO probe compares against.
// Flow, payload, stop, and RTO are construction arguments. The pending
// probe event itself travels through core's source registry.
func (a *AIMD) SaveState(w *snapshot.Writer) {
	w.F64(a.window)
	w.F64(a.ssthresh)
	w.I64(int64(a.inFlight))
	w.U64(a.acked)
	w.U64(a.probed)
}

func (a *AIMD) LoadState(r *snapshot.Reader) error {
	a.window = r.F64()
	a.ssthresh = r.F64()
	a.inFlight = int(r.I64())
	a.acked = r.U64()
	a.probed = r.U64()
	return r.Err()
}

func (s *onOffSrc) SaveState(w *snapshot.Writer) {
	w.I64(int64(s.t))
	w.I64(int64(s.end))
	w.Bool(s.inBurst)
	w.U64(s.rng.State())
}

func (s *onOffSrc) LoadState(r *snapshot.Reader) error {
	s.t = sim.Time(r.I64())
	s.end = sim.Time(r.I64())
	s.inBurst = r.Bool()
	s.rng.SetState(r.U64())
	return r.Err()
}
