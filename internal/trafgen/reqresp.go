package trafgen

import (
	"mplsvpn/internal/netsim"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/stats"
)

// ReqResp models transactional traffic (the paper's "legacy systems and
// enterprise protocols" running over the VPN): a client sends requests; on
// delivery at the server the harness injects a response; round-trip time
// is sampled at the client. RTT is the metric interactive SLAs quote.
type ReqResp struct {
	Req  *Flow // client -> server direction
	Resp *Resp // server -> client direction metadata

	// RTT collects request->response round trips in milliseconds.
	RTT stats.Sample
	// Completed counts finished transactions; Outstanding those in flight.
	Completed int

	net     *netsim.Network
	pending map[uint64]sim.Time
}

// Resp describes the response direction: where responses are injected and
// how they are addressed.
type Resp struct {
	Flow    *Flow
	Payload int
}

// NewReqResp builds a transactional source. req carries requests from the
// client site; resp describes the reverse flow, injected at the server
// when a request arrives.
func NewReqResp(n *netsim.Network, req *Flow, resp *Flow, respPayload int) *ReqResp {
	return &ReqResp{
		Req:     req,
		Resp:    &Resp{Flow: resp, Payload: respPayload},
		net:     n,
		pending: make(map[uint64]sim.Time),
	}
}

// SendRequests issues requests of reqPayload bytes every interval from
// start to stop.
func (rr *ReqResp) SendRequests(reqPayload int, interval, start, stop sim.Time) {
	var tick func(t sim.Time)
	tick = func(t sim.Time) {
		if t > stop {
			return
		}
		rr.net.E.Schedule(t, func() {
			rr.Req.Stats.RecordSent()
			p := rr.Req.fill(rr.net.NewPacket(rr.Req.At), reqPayload)
			rr.pending[p.Seq] = rr.net.E.Now()
			rr.net.Inject(rr.Req.At, p)
			tick(t + interval)
		})
	}
	tick(start)
}

// HandleDelivery reacts to a delivered packet: a request triggers the
// response injection at the server; a response closes the transaction and
// samples the RTT. It reports whether the packet belonged to this
// exchange. Wire it to the network's delivery hook.
func (rr *ReqResp) HandleDelivery(p *packet.Packet) bool {
	switch p.FlowKey() {
	case flowKey(rr.Req):
		// Server side: answer with the same transaction sequence.
		rr.Resp.Flow.Stats.RecordSent()
		resp := rr.Resp.Flow.fill(rr.net.NewPacket(rr.Resp.Flow.At), rr.Resp.Payload)
		resp.Seq = p.Seq
		rr.net.Inject(rr.Resp.Flow.At, resp)
		return true
	case flowKey(rr.Resp.Flow):
		if sentAt, ok := rr.pending[p.Seq]; ok {
			delete(rr.pending, p.Seq)
			rr.RTT.AddDuration(rr.net.E.Now() - sentAt)
			rr.Completed++
		}
		return true
	}
	return false
}

// Outstanding returns the number of transactions awaiting a response.
func (rr *ReqResp) Outstanding() int { return len(rr.pending) }

func flowKey(f *Flow) packet.FlowKey {
	return packet.FlowKey{
		Src: f.Src, Dst: f.Dst,
		SrcPort: f.SrcPort, DstPort: f.DstPort, Protocol: f.Proto,
	}
}
