// Package main_test holds the benchmark harness: one testing.B target per
// experiment table/figure in DESIGN.md §3. Each bench both measures the
// cost of regenerating an experiment and asserts its headline shape, so
// `go test -bench=. -benchmem` doubles as the reproduction run recorded in
// bench_output.txt.
package main_test

import (
	"fmt"

	"testing"

	"mplsvpn/internal/experiments"
	"mplsvpn/internal/sim"
)

// BenchmarkE1Scalability regenerates the §2.1 provisioning-state table.
func BenchmarkE1Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E1Scalability([]int{10, 25, 50, 100, 200})
		if res.OverlayVCs[0] != 45 || res.OverlayVCs[4] != 19900 {
			b.Fatalf("paper numbers broken: %v", res.OverlayVCs)
		}
	}
}

// BenchmarkE2QoS regenerates the per-class service table under congestion.
func BenchmarkE2QoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E2QoS(2 * sim.Second)
		if res.VoiceLoss["mpls-hybrid"] > 0.001 {
			b.Fatalf("hybrid voice loss %v", res.VoiceLoss["mpls-hybrid"])
		}
		if res.VoiceP99["mpls-hybrid"] >= res.VoiceP99["mpls-fifo"] {
			b.Fatal("QoS architecture did not beat FIFO")
		}
	}
}

// BenchmarkE3IPsec regenerates the IPSec-vs-MPLS visibility comparison.
func BenchmarkE3IPsec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E3IPsec(2 * sim.Second)
		if res.VoiceP99["ipsec-hidden"] <= res.VoiceP99["mpls-vpn"] {
			b.Fatal("encryption did not erase QoS")
		}
	}
}

// BenchmarkE4Forwarding regenerates the label-vs-LPM lookup cost table.
func BenchmarkE4Forwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E4Forwarding([]int{1000, 10000, 100000}, 500000)
		if res.NsPerOp["ilm"] > res.NsPerOp["lpm-100000"] {
			b.Fatal("label lookup slower than 100k-prefix LPM")
		}
	}
}

// BenchmarkE5TE regenerates the TE-vs-shortest-path comparison.
func BenchmarkE5TE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E5TrafficEngineering(2 * sim.Second)
		if !res.LongPathUsed {
			b.Fatal("TE never used the long path")
		}
		if res.Loss["rsvp-te/flowB"] > 0.001 {
			b.Fatalf("TE flow lost %v", res.Loss["rsvp-te/flowB"])
		}
	}
}

// BenchmarkE6Provisioning regenerates the isolation sweep.
func BenchmarkE6Provisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E6Isolation(5, uint64(i)*97+1)
		if res.Violations != 0 || res.WrongReachability != 0 {
			b.Fatalf("isolation broken: %d violations, %d wrong outcomes",
				res.Violations, res.WrongReachability)
		}
	}
}

// BenchmarkE7EdgeMapping regenerates the DSCP->EXP fidelity matrix.
func BenchmarkE7EdgeMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E7EdgeMapping()
		if res.Mismatches != 0 {
			b.Fatalf("mapping mismatches: %d", res.Mismatches)
		}
	}
}

// BenchmarkE8Resilience regenerates the failure-restoration sweep and the
// iBGP scaling comparison.
func BenchmarkE8Resilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E8Resilience(2 * sim.Second)
		// Instant detection loses at most the packets already in flight
		// on the dying link (the failure instant is phase-dependent).
		if res.LossByDetect[0] > 0.005 {
			b.Fatalf("instant failover lost %v", res.LossByDetect[0])
		}
		if res.SessionsRR[32] >= res.SessionsFullMesh[32] {
			b.Fatal("route reflector did not reduce sessions")
		}
	}
}

// BenchmarkE9Ablations regenerates the design-choice ablation table.
func BenchmarkE9Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E9Ablations(sim.Second)
		if res.IndependentRounds >= res.OrderedRounds {
			b.Fatal("independent LDP did not converge faster")
		}
	}
}

// BenchmarkE10MultiCarrier regenerates the cross-carrier SLA comparison.
func BenchmarkE10MultiCarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E10MultiCarrier(2 * sim.Second)
		if res.VoiceP99["both-qos"] >= res.VoiceP99["as2-besteffort"] {
			b.Fatal("cross-carrier QoS no better than weakest-link baseline")
		}
	}
}

// BenchmarkE11VPNTiers regenerates the per-VPN QoS level table.
func BenchmarkE11VPNTiers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E11VPNTiers(2 * sim.Second)
		if !res.CheatBlocked {
			b.Fatal("edge re-marking failed")
		}
	}
}

// BenchmarkE12FastReroute regenerates the FRR protection comparison.
func BenchmarkE12FastReroute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E12FastReroute(2 * sim.Second)
		if res.Loss["frr"][1000] > 0.01 {
			b.Fatal("FRR failed to bound the loss window")
		}
	}
}

// BenchmarkE13InterASOptions regenerates the option A/B comparison.
func BenchmarkE13InterASOptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E13InterASOptions(sim.Second, 4)
		if res.Delivered["A"] != res.Delivered["B"] {
			b.Fatal("inter-AS options diverged")
		}
	}
}

// BenchmarkBackbone200 drives the E15 200-site workload through the
// serial engine and the sharded backend at 2/4/8 shards. Parallel gain
// requires GOMAXPROCS > 1 — on a single-core host the sub-benchmarks
// measure coordination overhead instead; the delivered-packet assertion
// pins the workload as byte-equivalent either way.
func BenchmarkBackbone200(b *testing.B) {
	const dur = 200 * sim.Millisecond
	want := experiments.RunScaling(experiments.ScalingSites, 0, 0, dur)
	for _, shards := range []int{0, 2, 4, 8} {
		name := "serial"
		if shards > 0 {
			name = fmt.Sprintf("shards-%d", shards)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunScaling(experiments.ScalingSites, shards, 0, dur)
				if r.Delivered != want.Delivered {
					b.Fatalf("delivered %d, serial %d", r.Delivered, want.Delivered)
				}
				b.ReportMetric(float64(r.Events)/r.Wall.Seconds(), "events/s")
			}
		})
	}
}
