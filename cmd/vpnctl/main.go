// Command vpnctl provisions and exercises an MPLS VPN backbone from a
// plain-text config (see internal/netconf for the directive reference),
// then prints a per-flow SLA report — the operator's view of the paper's
// architecture.
//
// Usage:
//
//	vpnctl -f network.conf [-sched hybrid] [-seed 1] [-v] [-dot topo.dot] [-metrics out.json] [-chaos faults.scn] [-intent desired.int]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mplsvpn/internal/chaos"
	"mplsvpn/internal/core"
	"mplsvpn/internal/intent"
	"mplsvpn/internal/netconf"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/stats"
)

func main() {
	var (
		file  = flag.String("f", "", "config file (required)")
		sched = flag.String("sched", "hybrid", "scheduler: fifo|priority|wfq|drr|hybrid")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		verb  = flag.Bool("v", false, "verbose: print router counters")
		dot   = flag.String("dot", "", "write a Graphviz rendering of the network to this file")
		met   = flag.String("metrics", "", "write a telemetry snapshot to this file after the run ('-' = stdout; a .json suffix selects JSON, anything else text)")
		chs   = flag.String("chaos", "", "fault scenario file to inject during the run (see internal/chaos for the DSL)")
		intf  = flag.String("intent", "", "declarative intent spec to reconcile onto the backbone (see internal/intent for the DSL)")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*file, *sched, *seed, *verb, *dot, *met, *chs, *intf); err != nil {
		fmt.Fprintln(os.Stderr, "vpnctl:", err)
		os.Exit(1)
	}
}

func schedKind(s string) (core.SchedulerKind, error) {
	switch s {
	case "fifo":
		return core.SchedFIFO, nil
	case "priority":
		return core.SchedPriority, nil
	case "wfq":
		return core.SchedWFQ, nil
	case "drr":
		return core.SchedDRR, nil
	case "hybrid":
		return core.SchedHybrid, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q", s)
}

func run(path, sched string, seed uint64, verbose bool, dotFile, metricsFile, chaosFile, intentFile string) error {
	kind, err := schedKind(sched)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var scenario *chaos.Scenario
	if chaosFile != "" {
		cf, err := os.Open(chaosFile)
		if err != nil {
			return err
		}
		scenario, err = chaos.ParseScenario(cf, chaosFile)
		cf.Close()
		if err != nil {
			return err
		}
	}

	var spec *intent.Spec
	if intentFile != "" {
		inf, err := os.Open(intentFile)
		if err != nil {
			return err
		}
		spec, err = intent.Parse(inf, intentFile)
		inf.Close()
		if err != nil {
			return err
		}
	}

	sc, err := netconf.Load(f, path, core.Config{Seed: seed, Scheduler: kind})
	if err != nil {
		return err
	}
	b := sc.B
	horizon := sc.Duration
	if scenario != nil && scenario.Duration()+sim.Second > horizon {
		horizon = scenario.Duration() + sim.Second
	}
	if metricsFile != "" || scenario != nil {
		b.EnableTelemetry(core.TelemetryOptions{Horizon: horizon, JournalCap: 4096})
	}
	var inj *chaos.Injector
	if scenario != nil {
		b.EnableResilience(core.ResilienceOptions{Policy: core.DegradeShrink, Horizon: horizon})
		if scenario.Surv != nil || scenario.Damping != nil {
			b.EnableSurvivability(chaos.SurvivabilityOptions(scenario, horizon))
		}
		inj = chaos.New(b, scenario)
		inj.Schedule()
	}
	var rec *intent.Reconciler
	var srv *netconf.Server
	if spec != nil {
		store := intent.NewStore()
		if err := store.Put(spec); err != nil {
			return err
		}
		srv = netconf.NewServer(b)
		rec = intent.NewReconciler(srv, store, intent.Options{Horizon: horizon})
		if inj != nil {
			inj.Reconciler = rec
		}
		rec.Start()
	}
	for _, lsp := range sc.TELSPs {
		fmt.Printf("telsp %s: %s (%.0f b/s reserved)\n", lsp.Name, lsp.Path.String(b.G), lsp.Bandwidth)
	}

	b.Net.RunUntil(horizon + sim.Second)

	if rec != nil {
		st := rec.Stats
		fmt.Printf("=== intent report (%s) ===\n", intentFile)
		fmt.Printf("converged=%t scans=%d batches=%d ops=%d retries=%d quarantined=%d\n",
			rec.Converged(), st.Scans, st.Batches, st.OpsApplied, st.Retries, st.Quarantined)
		fmt.Printf("sessions: %d commits, %d rollbacks (%d auto), %d ops applied\n",
			srv.Commits, srv.Rollbacks, srv.AutoRolled, srv.OpsApplied)
		q := rec.Quarantined()
		keys := make([]string, 0, len(q))
		for k := range q {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  QUARANTINED %s: %v\n", k, q[k])
		}
		fmt.Println()
	}

	fmt.Printf("\n=== SLA report (scheduler=%s, %v simulated) ===\n", sched, sc.Duration)
	for _, fl := range sc.Flows {
		line := fl.Stats.Summary()
		if fl.DSCP == packet.DSCPEF {
			q := stats.ScoreVoice(fl.Stats)
			line += fmt.Sprintf("  MOS=%.2f (%s)", q.MOS, q.Grade())
		}
		fmt.Println(line)
	}
	if len(sc.SLAs) > 0 {
		fmt.Println("\n=== SLA compliance ===")
		for _, fl := range sc.Flows {
			if target, ok := sc.SLAs[fl.Stats.Name]; ok {
				fmt.Println(target.Evaluate(fl.Stats).String())
			}
		}
	}

	fmt.Printf("\ninjected=%d delivered=%d dropped=%d isolation_violations=%d\n",
		b.Net.Injected, b.Net.Delivered, b.Net.Dropped, b.IsolationViolations)
	if b.IGP != nil {
		fmt.Println(b.IGP.String())
	}
	if b.LDP != nil {
		fmt.Printf("ldp: %d mapping messages, %d ILM entries network-wide\n",
			b.LDP.MessagesSent, b.LDP.TotalILMEntries())
	}
	fmt.Printf("bgp: %d updates, %d sessions\n", b.BGP.UpdatesSent, b.BGP.SessionCount())

	if inj != nil {
		fmt.Printf("\n=== chaos report ===\n%s\n", inj.Report())
		if st := b.SessionStats(); st.Flaps > 0 || st.Restores > 0 {
			fmt.Printf("sessions: %d flaps, %d restores, %d stale swept, %d withdrawn, %d damped, %d reused\n",
				st.Flaps, st.Restores, st.StaleSwept, st.Withdrawn, st.Damped, st.Reused)
		}
		for _, v := range inj.Checker.Violations {
			fmt.Println("  VIOLATION:", v)
		}
		if ints := b.TEIntents(); len(ints) > 0 {
			fmt.Println("TE intents after scenario:")
			for _, st := range ints {
				line := fmt.Sprintf("  %-12s %-8s %-9s %.0f/%.0f b/s", st.Name, st.VPN, st.State, st.Bandwidth, st.FullBandwidth)
				if st.Path != "" {
					line += "  via " + st.Path
				}
				fmt.Println(line)
			}
		}
		if verbose {
			fmt.Println("\n=== event journal ===")
			fmt.Print(b.Telemetry().Journal.Render())
		}
	}

	for _, tr := range sc.Traces {
		fmt.Printf("\n=== trace %s -> %s ===\n", tr.Site, tr.Dst)
		fmt.Print(b.TraceRoute(tr.Site, tr.Dst, tr.DSCP).String())
	}

	if dotFile != "" {
		if err := os.WriteFile(dotFile, []byte(b.DOT()), 0o644); err != nil {
			return fmt.Errorf("writing dot: %w", err)
		}
		fmt.Printf("\ntopology written to %s (render: dot -Tsvg %s)\n", dotFile, dotFile)
	}

	if verbose {
		fmt.Println("\n=== router counters ===")
		for _, name := range b.SiteNames() {
			ce, _ := b.Site(name)
			r := b.Net.Router(ce)
			fmt.Printf("%-16s delivered=%-6d policed=%-4d noroute=%d\n",
				r.Name, r.Delivered, r.DroppedPolicer, r.DroppedNoRoute)
		}
	}

	if metricsFile != "" {
		if err := writeMetrics(b, metricsFile); err != nil {
			return err
		}
	}
	return nil
}

// writeMetrics renders the telemetry snapshot to dst: "-" prints text to
// stdout, a .json filename gets the JSON encoding, anything else text.
func writeMetrics(b *core.Backbone, dst string) error {
	snap := b.TelemetrySnapshot()
	if snap == nil {
		return fmt.Errorf("telemetry not enabled")
	}
	if dst == "-" {
		fmt.Print(snap.Text())
		return nil
	}
	var data []byte
	if strings.HasSuffix(dst, ".json") {
		j, err := snap.JSON()
		if err != nil {
			return fmt.Errorf("encoding metrics: %w", err)
		}
		data = append(j, '\n')
	} else {
		data = []byte(snap.Text())
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	fmt.Printf("\ntelemetry snapshot written to %s\n", dst)
	return nil
}
