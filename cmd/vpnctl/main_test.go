package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mplsvpn/internal/netconf"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
)

func TestRunDemoConfig(t *testing.T) {
	if err := run(filepath.Join("testdata", "demo.conf"), "hybrid", 1, true, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTEConfig(t *testing.T) {
	if err := run(filepath.Join("testdata", "te.conf"), "fifo", 1, false, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, s := range []string{"fifo", "priority", "wfq", "drr", "hybrid"} {
		if err := run(filepath.Join("testdata", "demo.conf"), s, 1, false, "", "", "", ""); err != nil {
			t.Fatalf("scheduler %s: %v", s, err)
		}
	}
}

func TestBadScheduler(t *testing.T) {
	if err := run(filepath.Join("testdata", "demo.conf"), "nope", 1, false, "", "", "", ""); err == nil {
		t.Fatal("accepted unknown scheduler")
	}
}

func TestMissingFile(t *testing.T) {
	if err := run("testdata/absent.conf", "hybrid", 1, false, "", "", "", ""); err == nil {
		t.Fatal("accepted missing file")
	}
}

func writeConf(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "c.conf")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"bad-directive", "frobnicate x\n", "unknown directive"},
		{"bad-bw", "pe A\npe B\nlink A B 10Q 1ms 1\n", "bad bandwidth"},
		{"bad-delay", "pe A\npe B\nlink A B 10M xs 1\n", "bad delay"},
		{"bad-metric", "pe A\npe B\nlink A B 10M 1ms x\n", "bad metric"},
		{"bad-prefix", "pe A\nvpn v\nsite v s A notaprefix\n", "bad prefix"},
		{"bad-class", "pe A\npe B\nlink A B 10M 1ms 1\nvpn v\nsite v s1 A 10.1.0.0/16\nsite v s2 B 10.2.0.0/16\nflow f s1 s2 80 warp cbr 100 1ms\n", "unknown class"},
		{"short-link", "link A\n", "link <a>"},
		{"bad-pattern", "pe A\npe B\nlink A B 10M 1ms 1\nvpn v\nsite v s1 A 10.1.0.0/16\nsite v s2 B 10.2.0.0/16\nflow f s1 s2 80 be blast 100 1ms\n", "unknown pattern"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(writeConf(t, c.body), "hybrid", 1, false, "", "", "", "")
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestDOTFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "topo.dot")
	if err := run(filepath.Join("testdata", "demo.conf"), "hybrid", 1, false, out, "", "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph backbone") {
		t.Fatalf("dot output wrong:\n%s", data)
	}
}

func TestParseBw(t *testing.T) {
	cases := map[string]float64{"10M": 10e6, "2.5G": 2.5e9, "100K": 100e3, "42": 42}
	for in, want := range cases {
		got, err := netconf.ParseBandwidth(in)
		if err != nil || got != want {
			t.Fatalf("netconf.ParseBandwidth(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := netconf.ParseBandwidth("x"); err == nil {
		t.Fatal("parseBw accepted garbage")
	}
}

func TestParseClassCoverage(t *testing.T) {
	for in, want := range map[string]packet.DSCP{
		"ef": packet.DSCPEF, "af41": packet.DSCPAF41, "af21": packet.DSCPAF21,
		"be": packet.DSCPBestEffort, "cs0": packet.DSCPBestEffort,
		"cs1": packet.DSCPCS1, "cs6": packet.DSCPCS6, "EF": packet.DSCPEF,
	} {
		got, err := netconf.ParseClass(in)
		if err != nil || got != want {
			t.Fatalf("netconf.ParseClass(%q) = %v, %v", in, got, err)
		}
	}
}

func TestParseDur(t *testing.T) {
	d, err := netconf.ParseDuration("1500ms")
	if err != nil || d != 1500*sim.Millisecond {
		t.Fatalf("parseDur = %v, %v", d, err)
	}
}

func TestRunFailoverConfig(t *testing.T) {
	if err := run(filepath.Join("testdata", "failover.conf"), "hybrid", 1, false, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestDirectiveOrderErrors(t *testing.T) {
	// routereflector after build must fail.
	body := "pe A\npe B\nlink A B 10M 1ms 1\nvpn v\nroutereflector A\n"
	if err := run(writeConf(t, body), "hybrid", 1, false, "", "", "", ""); err == nil {
		t.Fatal("routereflector after build accepted")
	}
	if err := run(writeConf(t, "dste 2.0\n"), "hybrid", 1, false, "", "", "", ""); err == nil {
		t.Fatal("dste > 1 accepted")
	}
}

func TestMetricsFlagText(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.txt")
	if err := run(filepath.Join("testdata", "demo.conf"), "hybrid", 1, false, "", out, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"=== telemetry snapshot", "-- metrics", "port_offered_bytes", "-- flow records"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsFlagJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.json")
	if err := run(filepath.Join("testdata", "demo.conf"), "hybrid", 1, false, "", out, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
		Flows []struct {
			VPN string `json:"vpn"`
		} `json:"flows"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, data)
	}
	if len(snap.Metrics) == 0 || len(snap.Flows) == 0 {
		t.Fatalf("metrics JSON empty: %d metrics, %d flows", len(snap.Metrics), len(snap.Flows))
	}
	var offered float64
	for _, m := range snap.Metrics {
		if m.Name == "port_offered_bytes" {
			offered += m.Value
		}
	}
	if offered == 0 {
		t.Fatal("no port_offered_bytes in JSON snapshot")
	}
}

func TestMetricsFlagStdout(t *testing.T) {
	if err := run(filepath.Join("testdata", "demo.conf"), "hybrid", 1, false, "", "-", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRRAndDSTEDirectives(t *testing.T) {
	body := `routereflector P1
dste 0.4
pe A
p P1
pe B
link A P1 10M 1ms 1
link P1 B 10M 1ms 1
vpn v
site v s1 A 10.1.0.0/16
site v s2 B 10.2.0.0/16
telsp prem A B 3M ef
run 500ms
flow f s1 s2 80 ef cbr 160 20ms
`
	if err := run(writeConf(t, body), "hybrid", 1, false, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunChaosScenario(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run(filepath.Join("testdata", "failover.conf"), "hybrid", 1, false, "", "",
			filepath.Join("testdata", "flapstorm.scn"), ""); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"=== chaos report ===", "invariant checks", "0 violations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChaosBadScenario(t *testing.T) {
	scn := filepath.Join(t.TempDir(), "bad.scn")
	if err := os.WriteFile(scn, []byte("explode X Y at=1s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join("testdata", "failover.conf"), "hybrid", 1, false, "", "", scn, ""); err == nil {
		t.Fatal("bad scenario accepted")
	}
	if err := run(filepath.Join("testdata", "failover.conf"), "hybrid", 1, false, "", "",
		"testdata/absent.scn", ""); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	defer func() {
		os.Stdout = old
		r.Close()
	}()
	fn()
	w.Close()
	return <-done
}

func TestRunIntentFlag(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run(filepath.Join("testdata", "demo.conf"), "hybrid", 1, false, "", "", "",
			filepath.Join("testdata", "provision.int")); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"=== intent report", "converged=true", "quarantined=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunIntentBadSpec(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.int")
	if err := os.WriteFile(bad, []byte("vpn headless\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join("testdata", "demo.conf"), "hybrid", 1, false, "", "", "", bad); err == nil {
		t.Fatal("bad intent spec accepted")
	}
	if err := run(filepath.Join("testdata", "demo.conf"), "hybrid", 1, false, "", "", "",
		"testdata/absent.int"); err == nil {
		t.Fatal("missing intent file accepted")
	}
}
