package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"mplsvpn/internal/experiments"
	"mplsvpn/internal/sim"
)

// BenchReport is the machine-readable performance snapshot written to
// BENCH_<n>.json by `vpnbench -perf`. It carries the numbers the
// allocation-budget gate tracks across commits: forwarding-decision cost
// (E4), full data-plane throughput and allocation rate on the 200-site
// backbone (E17), and the sharded engine's event throughput (E15).
type BenchReport struct {
	Generated  string `json:"generated"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// HostCPUs is runtime.NumCPU() — recorded so a snapshot from a laptop
	// is never silently compared against one from a build server.
	HostCPUs int `json:"host_cpus"`
	// SectionGoMaxProcs records the GOMAXPROCS each section actually ran
	// under. The comparison gate refuses to score a section against a
	// previous snapshot taken at a different core count: wall-clock
	// numbers across core counts are different experiments, not a
	// regression signal.
	SectionGoMaxProcs map[string]int     `json:"section_gomaxprocs"`
	E4NsPerOp         map[string]float64 `json:"e4_ns_per_op"`
	// Backbone200 is the pooled 200-site run.
	Backbone200 BenchDataPlane `json:"backbone200"`
	// Unpooled200 is the same workload with freelists disabled (ablation).
	Unpooled200 BenchDataPlane `json:"unpooled200"`
	// E15EventsPerSec keys are "serial" and "shards-<n>".
	E15EventsPerSec map[string]float64 `json:"e15_events_per_sec"`
	// E22Scaling is the GOMAXPROCS x shards scaling curve.
	E22Scaling BenchScaling `json:"e22_scaling"`
	// E19Soak is the day-in-the-life SLA scorecard under checkpoint/resume.
	E19Soak BenchSoak `json:"e19_soak"`
	// E20ControlPlane is the million-route control-plane scaling snapshot.
	E20ControlPlane BenchControlPlane `json:"e20_control_plane"`
	// E21InterAS is the multi-carrier survivability scorecard per RFC 4364
	// option.
	E21InterAS BenchInterAS `json:"e21_interas"`
}

// BenchInterAS summarizes E21: a full transit-AS outage under peak load,
// scored per interconnect option ("optionA", "optionB", "optionC"). The
// gate enforces SLA conformance on the surviving providers, serial-vs-
// 8-shard digest equality, and a real (detected, failed-over, recovered)
// outage in every run.
type BenchInterAS struct {
	Conform      map[string]bool    `json:"conform"`
	DigestMatch  map[string]bool    `json:"digest_match"`
	Flaps        map[string]int     `json:"peering_flaps"`
	Failovers    map[string]int     `json:"failovers"`
	Reinstalls   map[string]int     `json:"reinstalls"`
	VoiceLossPct map[string]float64 `json:"voice_loss_pct"`
	VoiceP99Ms   map[string]float64 `json:"voice_p99_ms"`
	Violations   int                `json:"invariant_violations"`
}

// BenchControlPlane summarizes the E20 headline build (10k PEs / 1k VPNs /
// 1M VPN-IPv4 routes through clustered reflection) and the incremental
// SPF/CSPF speedups, plus the oracle verdicts the gate enforces.
type BenchControlPlane struct {
	PEs               int     `json:"pes"`
	VPNs              int     `json:"vpns"`
	Routes            int     `json:"routes"`
	SessionsClustered int     `json:"sessions_clustered"`
	SessionsFullMesh  int     `json:"sessions_full_mesh"`
	ConvergeSec       float64 `json:"converge_sec"`
	Updates           int     `json:"updates"`
	LoopPrevented     int     `json:"loop_prevented"`
	BytesPerRoute     float64 `json:"bytes_per_route"`
	ISPFSpeedup       float64 `json:"ispf_speedup"`
	ICSPFSpeedup      float64 `json:"icspf_speedup"`
	MeshEquivalent    bool    `json:"mesh_equivalent"`
	ISPFOracleOK      bool    `json:"ispf_oracle_ok"`
	ICSPFOracleOK     bool    `json:"icspf_oracle_ok"`
}

// BenchSoak summarizes the E19 day-in-the-life run: the checkpoint-protocol
// accounting and the per-class SLA conformance the gate enforces.
type BenchSoak struct {
	Checkpoints int     `json:"checkpoints"`
	Cycles      int     `json:"crash_resume_cycles"`
	ReplayedMs  float64 `json:"replayed_ms"`
	DigestMatch bool    `json:"digest_match"`
	Violations  int     `json:"invariant_violations"`
	// Conform maps plane -> every-class-SLA-met ("mpls-te", "overlay-ipsec").
	Conform map[string]bool `json:"conform"`
	// VoiceLossPct and VoiceP99Ms track the headline class per plane.
	VoiceLossPct map[string]float64 `json:"voice_loss_pct"`
	VoiceP99Ms   map[string]float64 `json:"voice_p99_ms"`
}

// BenchScaling summarizes the E22 core-count sweep. Keys are
// "gmp<g>/serial" and "gmp<g>/shards-<k>"; speedups are always against the
// serial baseline at the same GOMAXPROCS.
type BenchScaling struct {
	HostCPUs     int                `json:"host_cpus"`
	EventsPerSec map[string]float64 `json:"events_per_sec"`
	Speedup      map[string]float64 `json:"speedup"`
	AllIdentical bool               `json:"all_identical"`
}

// BenchDataPlane summarizes one measured data-plane run.
type BenchDataPlane struct {
	PPS          float64 `json:"pps"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
	GCPauseMs    float64 `json:"gc_pause_ms"`
}

// maxAllocsPerPkt is the gate's allocation budget for the pooled data
// plane. Steady state is zero; the budget absorbs one-time growth
// (pool warm-up, queue rings, heap backing arrays) amortized over the run.
const maxAllocsPerPkt = 0.5

// maxPPSRegression is the fractional throughput loss versus the previous
// BENCH_<n>.json that fails the gate. Wall-clock numbers are noisy on
// shared machines, so the bar is deliberately loose; the allocation budget
// above is the precise gate.
const maxPPSRegression = 0.35

func dataPlaneFromRun(r experiments.E17Run) BenchDataPlane {
	d := BenchDataPlane{
		PPS:          r.PPS,
		EventsPerSec: r.EventsPerSec,
		AllocsPerPkt: r.AllocsPerPkt,
		GCPauseMs:    r.GCPauseMs,
	}
	if r.PPS > 0 {
		d.NsPerPkt = 1e9 / r.PPS
	}
	return d
}

// runPerf measures the perf suite, writes BENCH_<n>.json, compares against
// the previous snapshot, and (when gate is set) returns non-zero on a
// budget violation or a large throughput regression.
func runPerf(dir string, gate bool) int {
	fmt.Println("perf: E4 forwarding-decision cost...")
	e4 := experiments.E4Forwarding(nil, 500_000)
	fmt.Println(e4.Table.String())

	fmt.Println("perf: E17 data-plane throughput + pooling ablation...")
	e17 := experiments.E17ZeroAllocDataPlane(200*sim.Millisecond, []int{experiments.ScalingSites})
	fmt.Println(e17.Scaling.String())
	fmt.Println(e17.Ablation.String())

	fmt.Println("perf: E15 sharded event throughput...")
	e15 := map[string]float64{}
	for _, shards := range []int{0, 8} {
		r := experiments.RunScaling(experiments.ScalingSites, shards, 0, 200*sim.Millisecond)
		name := "serial"
		if shards > 0 {
			name = fmt.Sprintf("shards-%d", shards)
		}
		e15[name] = float64(r.Events) / r.Wall.Seconds()
		fmt.Printf("  %-9s %12.0f events/sec\n", name, e15[name])
	}
	fmt.Println()

	fmt.Println("perf: E22 scaling curve (GOMAXPROCS x shards)...")
	e22 := experiments.E22ParallelSweep(0, nil, nil)
	fmt.Println(e22.Table.String())

	fmt.Println("perf: E19 day-in-the-life soak (checkpointed)...")
	// The checkpoint store outlives the run so a failed digest gate can
	// bisect it for the first divergent window.
	e19Dir, err := os.MkdirTemp("", "vpnbench-e19-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpnbench:", err)
		return 1
	}
	defer os.RemoveAll(e19Dir)
	e19, err := experiments.E19DayInTheLife(e19Dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpnbench: e19:", err)
		return 1
	}
	fmt.Println(e19.Table.String())
	fmt.Printf("  %d checkpoints, %d crash/resume cycles, %.0f ms replayed, digest match: %t\n\n",
		e19.Checkpoints, e19.Cycles, e19.ReplayedMs, e19.DigestMatch)

	fmt.Println("perf: E21 inter-AS survivability (full transit-AS outage)...")
	e21, err := experiments.E21InterASSurvivability()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpnbench: e21:", err)
		return 1
	}
	fmt.Println(e21.Table.String())
	for _, name := range []string{"optionA", "optionB", "optionC"} {
		fmt.Printf("  %-8s conform=%t digest_match=%t flaps=%d failovers=%d reinstalls=%d\n",
			name, e21.Conform[name], e21.DigestMatch[name],
			e21.Flaps[name], e21.Failovers[name], e21.Reinstalls[name])
	}
	fmt.Println()

	fmt.Println("perf: E20 million-route control plane (full headline)...")
	e20 := experiments.E20ControlPlaneScaling(true)
	fmt.Println(e20.Comparison.String())
	fmt.Println(e20.Headline.String())
	fmt.Println(e20.ISPF.String())

	// Every section above runs at the ambient GOMAXPROCS except E22,
	// which sweeps its own values and compares only within each one.
	sections := map[string]int{}
	for _, s := range []string{"e4", "e15", "e17", "e19", "e20", "e21", "e22"} {
		sections[s] = gomaxprocs()
	}
	rep := &BenchReport{
		Generated:         time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:        gomaxprocs(),
		HostCPUs:          runtime.NumCPU(),
		SectionGoMaxProcs: sections,
		E4NsPerOp:         e4.NsPerOp,
		E15EventsPerSec:   e15,
		E22Scaling: BenchScaling{
			HostCPUs:     e22.HostCPUs,
			EventsPerSec: map[string]float64{},
			Speedup:      map[string]float64{},
			AllIdentical: e22.AllIdentical,
		},
		E19Soak: BenchSoak{
			Checkpoints:  e19.Checkpoints,
			Cycles:       e19.Cycles,
			ReplayedMs:   e19.ReplayedMs,
			DigestMatch:  e19.DigestMatch,
			Violations:   e19.Violations,
			Conform:      e19.Conform,
			VoiceLossPct: map[string]float64{},
			VoiceP99Ms:   map[string]float64{},
		},
	}
	for plane := range e19.LossPct {
		rep.E19Soak.VoiceLossPct[plane] = e19.LossPct[plane]["voice"]
		rep.E19Soak.VoiceP99Ms[plane] = e19.P99Ms[plane]["voice"]
	}
	for _, run := range e22.Runs {
		name := "serial"
		if run.Shards > 0 {
			name = fmt.Sprintf("shards-%d", run.Shards)
		}
		key := fmt.Sprintf("gmp%d/%s", run.GoMaxProcs, name)
		rep.E22Scaling.EventsPerSec[key] = run.EventsPerSec
		if run.Shards > 0 {
			rep.E22Scaling.Speedup[key] = run.Speedup
		}
	}
	rep.E21InterAS = BenchInterAS{
		Conform:      e21.Conform,
		DigestMatch:  e21.DigestMatch,
		Flaps:        e21.Flaps,
		Failovers:    e21.Failovers,
		Reinstalls:   e21.Reinstalls,
		VoiceLossPct: map[string]float64{},
		VoiceP99Ms:   map[string]float64{},
		Violations:   e21.Violations,
	}
	for opt := range e21.LossPct {
		rep.E21InterAS.VoiceLossPct[opt] = e21.LossPct[opt]["voice"]
		rep.E21InterAS.VoiceP99Ms[opt] = e21.P99Ms[opt]["voice"]
	}
	rep.E20ControlPlane = BenchControlPlane{
		PEs:               e20.HeadlinePEs,
		VPNs:              e20.HeadlineVPNs,
		Routes:            e20.HeadlineRoutes,
		SessionsClustered: e20.SessionsClustered,
		SessionsFullMesh:  e20.SessionsFullMesh,
		ConvergeSec:       e20.HeadlineConvergeSec,
		Updates:           e20.HeadlineUpdates,
		LoopPrevented:     e20.LoopPrevented,
		BytesPerRoute:     e20.BytesPerRoute,
		ISPFSpeedup:       e20.ISPFSpeedup,
		ICSPFSpeedup:      e20.ICSPFSpeedup,
		MeshEquivalent:    e20.MeshEquivalent,
		ISPFOracleOK:      e20.ISPFOracleOK,
		ICSPFOracleOK:     e20.ICSPFOracleOK,
	}
	var pooled, unpooled *experiments.E17Run
	for i := range e17.Runs {
		r := &e17.Runs[i]
		if r.Sites != experiments.ScalingSites {
			continue
		}
		if r.Config == "pooled" {
			pooled = r
		} else {
			unpooled = r
		}
	}
	if pooled != nil {
		rep.Backbone200 = dataPlaneFromRun(*pooled)
	}
	if unpooled != nil {
		rep.Unpooled200 = dataPlaneFromRun(*unpooled)
	}

	prevPath, prev := latestBench(dir)
	out := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", nextBenchIndex(dir)))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpnbench: marshal:", err)
		return 1
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vpnbench:", err)
		return 1
	}
	fmt.Printf("perf snapshot written to %s\n", out)

	fail := false
	// The soak gate is exact, not statistical: the simulation is
	// deterministic, so a digest mismatch, a missed SLA, or a lost
	// checkpoint cycle is a real regression, never noise.
	if !rep.E19Soak.DigestMatch {
		fmt.Println("GATE: e19 checkpointed run diverged from the uninterrupted run")
		// Auto-localize: binary-search the run's checkpoint store for the
		// first window whose restored state leaves the reference trajectory,
		// so the failure output names a virtual-time window, not a whole day.
		if w, probes, err := experiments.LocalizeE19Divergence(e19Dir); err != nil {
			fmt.Printf("GATE: bisect could not localize the divergence: %v\n", err)
		} else {
			fmt.Printf("GATE: bisect localized the first divergence to (%.0fms, %.0fms] in %d probes\n",
				float64(w.Lo)/float64(sim.Millisecond), float64(w.Hi)/float64(sim.Millisecond), probes)
		}
		fail = true
	}
	if rep.E19Soak.Cycles < 3 {
		fmt.Printf("GATE: e19 completed %d crash/resume cycles, want >= 3\n", rep.E19Soak.Cycles)
		fail = true
	}
	if !rep.E19Soak.Conform["mpls-te"] {
		fmt.Println("GATE: e19 MPLS/TE plane missed its per-class SLAs")
		fail = true
	}
	if rep.E19Soak.Violations != 0 {
		fmt.Printf("GATE: e19 recorded %d invariant violations\n", rep.E19Soak.Violations)
		fail = true
	}
	if rep.Backbone200.AllocsPerPkt > maxAllocsPerPkt {
		fmt.Printf("GATE: pooled data plane allocates %.2f objects/pkt, budget %.2f\n",
			rep.Backbone200.AllocsPerPkt, maxAllocsPerPkt)
		fail = true
	}
	// E22 scaling gates. Determinism is exact: every cell of the sweep
	// must reproduce the serial fingerprint. The speedup bar depends on
	// what the host can physically deliver: with >= 8 real cores the
	// 8-shard engine must beat serial 4x at GOMAXPROCS=8; on smaller
	// hosts (where "parallelism" is time-slicing on the same silicon) the
	// bar is near-parity at GOMAXPROCS=1 — the sharded engine must not
	// tax the single-core case for headroom it cannot use.
	if !rep.E22Scaling.AllIdentical {
		fmt.Println("GATE: an e22 sweep cell diverged from the serial fingerprint")
		fail = true
	}
	if rep.HostCPUs >= 8 {
		if sp := e22.Speedup(8, 8); sp < 4 {
			fmt.Printf("GATE: e22 shards-8 at GOMAXPROCS=8 sped up %.2fx on %d CPUs, want >= 4x\n",
				sp, rep.HostCPUs)
			fail = true
		}
	} else {
		serial1 := e22.EventsPerSec(1, 0)
		shards8 := e22.EventsPerSec(1, 8)
		if serial1 > 0 && shards8 < serial1*0.80 {
			fmt.Printf("GATE: e22 shards-8 at GOMAXPROCS=1 runs at %.0f events/sec vs serial %.0f — more than 20%% single-core overhead\n",
				shards8, serial1)
			fail = true
		}
	}
	// E20 control-plane gates: the headline must really be a million-route
	// build, reflection must collapse the session count by two orders of
	// magnitude, the incremental recomputes must beat full recompute 10x,
	// and every oracle-equivalence check must have held.
	cp := &rep.E20ControlPlane
	if cp.Routes < 1_000_000 {
		fmt.Printf("GATE: e20 headline carried %d routes, want >= 1,000,000\n", cp.Routes)
		fail = true
	}
	if cp.SessionsClustered*100 > cp.SessionsFullMesh {
		fmt.Printf("GATE: e20 clustered sessions %d vs full mesh %d — less than a 100x drop\n",
			cp.SessionsClustered, cp.SessionsFullMesh)
		fail = true
	}
	if cp.ISPFSpeedup < 10 {
		fmt.Printf("GATE: e20 incremental SPF speedup %.1fx, want >= 10x\n", cp.ISPFSpeedup)
		fail = true
	}
	if cp.ICSPFSpeedup < 10 {
		fmt.Printf("GATE: e20 incremental CSPF speedup %.1fx, want >= 10x\n", cp.ICSPFSpeedup)
		fail = true
	}
	if !cp.MeshEquivalent {
		fmt.Println("GATE: e20 clustered best paths diverged from the full-mesh oracle")
		fail = true
	}
	if !cp.ISPFOracleOK || !cp.ICSPFOracleOK {
		fmt.Printf("GATE: e20 incremental recompute diverged from full (spf ok=%t, cspf ok=%t)\n",
			cp.ISPFOracleOK, cp.ICSPFOracleOK)
		fail = true
	}
	// E21 inter-AS gates: every RFC 4364 option must survive the full
	// transit-AS outage within its SLAs, the 8-shard run must reproduce the
	// serial digest byte for byte, and the outage must really have been
	// detected, failed over, and recovered — a quiet run proves nothing.
	for _, name := range []string{"optionA", "optionB", "optionC"} {
		if !rep.E21InterAS.Conform[name] {
			fmt.Printf("GATE: e21 %s missed its per-class SLAs on the surviving providers\n", name)
			fail = true
		}
		if !rep.E21InterAS.DigestMatch[name] {
			fmt.Printf("GATE: e21 %s 8-shard digest diverged from the serial run\n", name)
			fail = true
		}
		if rep.E21InterAS.Flaps[name] < 2 || rep.E21InterAS.Failovers[name] == 0 || rep.E21InterAS.Reinstalls[name] == 0 {
			fmt.Printf("GATE: e21 %s outage not exercised (flaps=%d failovers=%d reinstalls=%d)\n",
				name, rep.E21InterAS.Flaps[name], rep.E21InterAS.Failovers[name], rep.E21InterAS.Reinstalls[name])
			fail = true
		}
	}
	if rep.E21InterAS.Violations != 0 {
		fmt.Printf("GATE: e21 recorded %d invariant violations\n", rep.E21InterAS.Violations)
		fail = true
	}
	if prev != nil {
		fmt.Printf("comparison vs %s:\n", prevPath)
		if prev.HostCPUs != 0 && prev.HostCPUs != rep.HostCPUs {
			fmt.Printf("  note: host CPU count changed %d -> %d\n", prev.HostCPUs, rep.HostCPUs)
		}
		cmp := func(section, name string, old, new float64, higherBetter bool) {
			if old == 0 {
				return
			}
			// Refuse cross-core-count comparisons: a section measured at a
			// different GOMAXPROCS is a different experiment, and scoring
			// it would turn a hardware change into a phantom regression
			// (or mask a real one behind extra cores).
			if po, no := prev.sectionGomaxprocs(section), rep.sectionGomaxprocs(section); po != no {
				fmt.Printf("  %-34s skipped: %s ran at GOMAXPROCS %d, now %d\n", name, section, po, no)
				return
			}
			delta := (new - old) / old * 100
			fmt.Printf("  %-34s %12.1f -> %12.1f  (%+.1f%%)\n", name, old, new, delta)
			if gate && higherBetter && new < old*(1-maxPPSRegression) {
				fmt.Printf("GATE: %s regressed more than %.0f%%\n", name, maxPPSRegression*100)
				fail = true
			}
		}
		cmp("e17", "backbone200.pps", prev.Backbone200.PPS, rep.Backbone200.PPS, true)
		cmp("e17", "backbone200.events_per_sec", prev.Backbone200.EventsPerSec, rep.Backbone200.EventsPerSec, true)
		cmp("e17", "backbone200.allocs_per_pkt", prev.Backbone200.AllocsPerPkt, rep.Backbone200.AllocsPerPkt, false)
		cmp("e4", "e4.ilm_ns_per_op", prev.E4NsPerOp["ilm"], rep.E4NsPerOp["ilm"], false)
		cmp("e15", "e15.serial_events_per_sec", prev.E15EventsPerSec["serial"], rep.E15EventsPerSec["serial"], true)
		cmp("e22", "e22.gmp1_serial_events_per_sec",
			prev.E22Scaling.EventsPerSec["gmp1/serial"], rep.E22Scaling.EventsPerSec["gmp1/serial"], true)
		cmp("e22", "e22.gmp1_shards8_events_per_sec",
			prev.E22Scaling.EventsPerSec["gmp1/shards-8"], rep.E22Scaling.EventsPerSec["gmp1/shards-8"], true)
	}
	if fail && gate {
		fmt.Println("perf gate FAILED")
		return 1
	}
	if gate {
		fmt.Println("perf gate ok")
	}
	return 0
}

// latestBench loads the highest-numbered BENCH_<n>.json in dir, if any.
func latestBench(dir string) (string, *BenchReport) {
	idx := benchIndices(dir)
	if len(idx) == 0 {
		return "", nil
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", idx[len(idx)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return "", nil
	}
	return path, &rep
}

func nextBenchIndex(dir string) int {
	idx := benchIndices(dir)
	if len(idx) == 0 {
		return 1
	}
	return idx[len(idx)-1] + 1
}

func benchIndices(dir string) []int {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	var idx []int
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if n, err := strconv.Atoi(base); err == nil {
			idx = append(idx, n)
		}
	}
	sort.Ints(idx)
	return idx
}

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// sectionGomaxprocs returns the GOMAXPROCS a section ran under; snapshots
// from before per-section recording fall back to the report-wide value.
func (r *BenchReport) sectionGomaxprocs(section string) int {
	if v, ok := r.SectionGoMaxProcs[section]; ok {
		return v
	}
	return r.GoMaxProcs
}
