// Command vpnbench regenerates every experiment table in EXPERIMENTS.md:
// the reproduction harness for the paper's claims (see DESIGN.md §3).
//
// Usage:
//
//	vpnbench               # run all experiments
//	vpnbench -e e1,e5      # run a subset
//	vpnbench -json out.json  # machine-readable results
//	vpnbench -dur 10s      # longer traffic runs (E2/E3/E5)
//	vpnbench -perf         # perf snapshot -> BENCH_<n>.json
//	vpnbench -perf -gate   # snapshot + fail on alloc/throughput regression
//	vpnbench -cpuprofile cpu.pprof -perf   # profile any run with pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mplsvpn/internal/experiments"
	"mplsvpn/internal/sim"
)

func main() {
	var (
		exps       = flag.String("e", "all", "comma-separated experiments to run (e1..e22 or all)")
		dur        = flag.Duration("dur", 5*time.Second, "simulated traffic duration for E2/E3/E5/E10")
		e1N        = flag.String("e1-sizes", "10,25,50,100,200", "E1 VPN sizes")
		shards     = flag.String("shards", "1,2,4,8", "E15/E22 shard counts to sweep")
		workers    = flag.Int("workers", 0, "E15 worker pool size (0 = GOMAXPROCS)")
		gmps       = flag.String("gomaxprocs", "1,2,4,8", "E22 GOMAXPROCS values to sweep")
		jsonFile   = flag.String("json", "", "also write machine-readable results to this file")
		perf       = flag.Bool("perf", false, "run the perf suite and write BENCH_<n>.json")
		gate       = flag.Bool("gate", false, "with -perf: fail on allocation-budget or throughput regression")
		benchDir   = flag.String("bench-dir", ".", "directory for BENCH_<n>.json snapshots")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	flag.Parse()

	code := 0
	defer func() { os.Exit(code) }()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpnbench: cpuprofile:", err)
			code = 1
			return
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vpnbench: cpuprofile:", err)
			code = 1
			return
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vpnbench: memprofile:", err)
				code = 1
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vpnbench: memprofile:", err)
				code = 1
			}
		}()
	}

	if *perf {
		code = runPerf(*benchDir, *gate)
		return
	}
	results := map[string]any{}

	want := map[string]bool{}
	if *exps == "all" {
		for _, e := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22"} {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}
	d := sim.Time(dur.Nanoseconds())

	if want["e1"] {
		var sizes []int
		for _, s := range strings.Split(*e1N, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
				fmt.Fprintf(os.Stderr, "vpnbench: bad -e1-sizes entry %q\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
		res := experiments.E1Scalability(sizes)
		results["e1"] = res
		fmt.Println(res.Table.String())
	}
	if want["e2"] {
		res := experiments.E2QoS(d)
		results["e2"] = res
		fmt.Println(res.Table.String())
		fmt.Println(res.CDF.String())
	}
	if want["e3"] {
		res := experiments.E3IPsec(d)
		results["e3"] = res
		fmt.Println(res.Table.String())
		fmt.Printf("anti-replay drops (RFC 4303 window vs QoS reordering): %v\n\n", res.ReplayDrops)
		fmt.Println(res.Overhead.String())
	}
	if want["e4"] {
		res := experiments.E4Forwarding(nil, 0)
		results["e4"] = res
		fmt.Println(res.Table.String())
	}
	if want["e5"] {
		res := experiments.E5TrafficEngineering(d)
		results["e5"] = res
		fmt.Println(res.Table.String())
		fmt.Printf("TE long path used: %v\n\n", res.LongPathUsed)
	}
	if want["e6"] {
		res := experiments.E6Isolation(10, 6000)
		results["e6"] = res
		fmt.Println(res.Table.String())
		fmt.Printf("violations=%d wrong_reachability=%d\n\n", res.Violations, res.WrongReachability)
	}
	if want["e7"] {
		res := experiments.E7EdgeMapping()
		results["e7"] = res
		fmt.Println(res.Table.String())
	}
	if want["e8"] {
		res := experiments.E8Resilience(d)
		results["e8"] = res
		fmt.Println(res.Restoration.String())
		fmt.Println(res.Figure())
		fmt.Println(res.Scaling.String())
	}
	if want["e9"] {
		res := experiments.E9Ablations(d)
		results["e9"] = res
		fmt.Println(res.Table.String())
	}
	if want["e10"] {
		res := experiments.E10MultiCarrier(d)
		results["e10"] = res
		fmt.Println(res.Table.String())
	}
	if want["e11"] {
		res := experiments.E11VPNTiers(d)
		results["e11"] = res
		fmt.Println(res.Table.String())
		fmt.Printf("EF-marking bronze customer held to bronze service: %v\n\n", res.CheatBlocked)
	}
	if want["e12"] {
		res := experiments.E12FastReroute(d)
		results["e12"] = res
		fmt.Println(res.Table.String())
	}
	if want["e13"] {
		res := experiments.E13InterASOptions(d, 4)
		results["e13"] = res
		fmt.Println(res.Table.String())
	}
	if want["e14"] {
		res := experiments.E14FlapStorm(0)
		results["e14"] = res
		fmt.Println(res.Table.String())
		fmt.Printf("resilient run: %d retries, %d degradations, %d restores, %d invariant violations\n\n",
			res.Retries, res.Degradations, res.Restores, res.Violations)
	}

	if want["e15"] {
		counts, ok := parseIntList(*shards)
		if !ok {
			fmt.Fprintf(os.Stderr, "vpnbench: bad -shards list %q\n", *shards)
			code = 2
			return
		}
		// E15 sweeps the 200-site topology at several shard counts; a full
		// -dur run per configuration is slow, so it uses its own default.
		res := experiments.E15ParallelScaling(0, counts, *workers)
		results["e15"] = res
		fmt.Println(res.Table.String())
		for i, ok := range res.Identical {
			if !ok {
				fmt.Printf("WARNING: run %d diverged from the serial fingerprint\n", i)
			}
		}
	}

	if want["e16"] {
		res := experiments.E16GracefulRestart(0)
		results["e16"] = res
		fmt.Println(res.Table.String())
		fmt.Printf("gr-on retained %d stale routes; journal: %d session_flap, %d session_restored; %d invariant violations\n\n",
			res.StaleRetained, res.SessionFlapEvents, res.SessionRestoredEvents, res.Violations)
	}

	if want["e17"] {
		res := experiments.E17ZeroAllocDataPlane(0, nil)
		results["e17"] = res
		fmt.Println(res.Scaling.String())
		fmt.Println(res.Ablation.String())
	}

	if want["e18"] {
		res := experiments.E18TransactionalProvisioning(d)
		results["e18"] = res
		fmt.Println(res.Table.String())
		fmt.Printf("%d VPNs / %d sites declared; digests identical across clean and crashed runs: %t\n\n",
			res.VPNs, res.Sites, res.DigestMatch["kill-mid-commit"] && res.DigestMatch["kill-pre-commit"])
	}

	if want["e19"] {
		res, err := experiments.E19DayInTheLife("")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpnbench: e19:", err)
			code = 1
			return
		}
		results["e19"] = res
		fmt.Println(res.Table.String())
		fmt.Printf("checkpoint protocol: %d checkpoints, %d crash/resume cycles, %.0f ms replayed, digest match: %t\n",
			res.Checkpoints, res.Cycles, res.ReplayedMs, res.DigestMatch)
		fmt.Printf("control plane: %d routes damped, %d reused, %d LSP reoptimizations, %d invariant violations\n\n",
			res.Suppressions, res.Reuses, res.Reoptimized, res.Violations)
	}

	if want["e20"] {
		// The standalone run uses the scaled-down headline (the full
		// million-route build lives in the perf suite: vpnbench -perf).
		res := experiments.E20ControlPlaneScaling(false)
		results["e20"] = res
		fmt.Println(res.Comparison.String())
		fmt.Println(res.Headline.String())
		fmt.Println(res.ISPF.String())
		fmt.Printf("clustered best paths identical to full mesh: %t; ISPF/ICSPF oracle equivalence: %t/%t\n\n",
			res.MeshEquivalent, res.ISPFOracleOK, res.ICSPFOracleOK)
	}

	if want["e21"] {
		res, err := experiments.E21InterASSurvivability()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpnbench: e21:", err)
			code = 1
			return
		}
		results["e21"] = res
		fmt.Println(res.Table.String())
		for _, name := range []string{"optionA", "optionB", "optionC"} {
			fmt.Printf("%-8s conform=%t serial==8-shard digest=%t flaps=%d failovers=%d reinstalls=%d\n",
				name, res.Conform[name], res.DigestMatch[name],
				res.Flaps[name], res.Failovers[name], res.Reinstalls[name])
		}
		fmt.Printf("invariant violations across all runs: %d\n\n", res.Violations)
	}

	if want["e22"] {
		counts, ok := parseIntList(*shards)
		if !ok {
			fmt.Fprintf(os.Stderr, "vpnbench: bad -shards list %q\n", *shards)
			code = 2
			return
		}
		gmpList, ok := parseIntList(*gmps)
		if !ok {
			fmt.Fprintf(os.Stderr, "vpnbench: bad -gomaxprocs list %q\n", *gmps)
			code = 2
			return
		}
		res := experiments.E22ParallelSweep(0, gmpList, counts)
		results["e22"] = res
		fmt.Println(res.Table.String())
		if !res.AllIdentical {
			fmt.Println("WARNING: a sweep cell diverged from the serial fingerprint")
		}
	}

	if *jsonFile != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpnbench: marshal:", err)
			code = 1
			return
		}
		if err := os.WriteFile(*jsonFile, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vpnbench:", err)
			code = 1
			return
		}
		fmt.Printf("results written to %s\n", *jsonFile)
	}
}

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(s string) ([]int, bool) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, false
		}
		out = append(out, n)
	}
	return out, true
}
