// Scalability: the paper's §2.1 virtual-circuit explosion, rendered as a
// growth table. An overlay VPN (frame-relay PVC mesh or IPSec tunnel mesh)
// needs N(N-1)/2 circuits; the MPLS VPN needs one access circuit and one
// VRF entry per site. This example provisions both for growing N and
// prints the provisioning work side by side.
//
//	go run ./examples/scalability
package main

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/overlay"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/stats"
)

func main() {
	table := stats.NewTable(
		"scalability: overlay vs MPLS VPN provisioning state (paper §2.1)",
		"sites", "overlay_VCs", "overlay_endpoint_cfgs", "mpls_vrf_routes_total",
		"mpls_ilm_entries", "marginal_cost_overlay", "marginal_cost_mpls")

	for _, n := range []int{10, 50, 100, 200} {
		// Overlay: full mesh of VCs.
		mesh := overlay.New("mesh", overlay.FullMesh)
		for i := 0; i < n; i++ {
			mesh.AddSite(overlay.SiteID(i), 1e6)
		}

		// MPLS VPN: n sites across a 4-PE backbone.
		b := core.NewBackbone(core.Config{Seed: uint64(n)})
		for _, pe := range []string{"PE1", "PE2", "PE3", "PE4"} {
			b.AddPE(pe)
		}
		b.AddP("P1")
		for _, pe := range []string{"PE1", "PE2", "PE3", "PE4"} {
			b.Link(pe, "P1", 100e6, sim.Millisecond, 1)
		}
		b.BuildProvider()
		b.DefineVPN("corp")
		pes := []string{"PE1", "PE2", "PE3", "PE4"}
		for i := 0; i < n; i++ {
			b.AddSite(core.SiteSpec{
				VPN: "corp", Name: fmt.Sprintf("site%03d", i), PE: pes[i%4],
				Prefixes: []addr.Prefix{addr.NewPrefix(addr.IPv4(0x0a000000|uint32(i+1)<<8), 24)},
			})
		}
		b.ConvergeVPNs()

		vrfTotal, ilmTotal := 0, 0
		for _, pe := range pes {
			for _, v := range b.Router(pe).VRFs {
				vrfTotal += v.Size()
			}
			ilmTotal += b.Router(pe).LFIB.ILMSize()
		}
		table.AddRow(n, mesh.NumVCs(), mesh.EndpointConfigs(), vrfTotal, ilmTotal,
			fmt.Sprintf("%d new VCs", n), "1 access circuit")
	}
	fmt.Println(table.String())
	fmt.Println("The overlay's marginal cost of site N is N-1 new circuits touching")
	fmt.Println("every existing site; the MPLS VPN touches one PE. That asymmetry is")
	fmt.Println("the paper's case for RFC 2547 VPNs in the backbone.")
}
