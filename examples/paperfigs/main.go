// Paperfigs reproduces the paper's four figures as running systems rather
// than diagrams, narrating the §4 service procedures at each step:
//
//	Fig. 1 — "Integrated MPLS service network": multiple VPNs sharing one
//	         MPLS domain.
//	Fig. 2 — "VPN sites connection interface": per-VPN tunnels (LSPs)
//	         joining sites V1/V2 across the provider.
//	Fig. 3 — "MPLS facilitates the deployment of VPNs": the CE/PE
//	         interface; workstations behind CEs exchanging data.
//	Fig. 4 — "MPLS deployment in a backbone": labelled packets on path 1,
//	         an unlabelled (plain IP) packet on path 2.
//
//	go run ./examples/paperfigs
package main

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/topo"
	"mplsvpn/internal/trafgen"
	"mplsvpn/internal/vpn"
)

func main() {
	// One backbone serves all four figures: two LSRs in the core, two
	// edge LSRs (PEs), exactly the shape of Fig. 4.
	b := core.NewBackbone(core.Config{Seed: 4})
	b.AddPE("LSR-edge-1")
	b.AddP("LSR-core-1")
	b.AddP("LSR-core-2")
	b.AddPE("LSR-edge-2")
	b.Link("LSR-edge-1", "LSR-core-1", 100e6, sim.Millisecond, 1)
	b.Link("LSR-core-1", "LSR-core-2", 100e6, sim.Millisecond, 1)
	b.Link("LSR-core-2", "LSR-edge-2", 100e6, sim.Millisecond, 1)
	b.BuildProvider()

	fmt.Println("== Fig. 1: integrated MPLS service network — two VPNs, one domain ==")
	for _, v := range []string{"vpn-A", "vpn-B"} {
		b.DefineVPN(v)
	}

	// §4.1 Discovery of membership: subscribe before joining, watch the
	// events arrive, and confirm VPN-A's discovery never sees VPN-B.
	fmt.Println("\n== §4.1 membership discovery ==")
	b.Registry.Subscribe("vpn-A", func(e vpn.Event) {
		verb := "joined"
		if !e.Joined {
			verb = "left"
		}
		fmt.Printf("  [discovery vpn-A] site %s %s (prefixes %v)\n", e.Site.Name, verb, e.Site.Prefixes)
	})

	// Fig. 2/3: sites V1 and V2 of each VPN attach at the edges.
	for _, v := range []string{"vpn-A", "vpn-B"} {
		b.AddSite(core.SiteSpec{VPN: v, Name: v + "-site-V1", PE: "LSR-edge-1",
			Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
		b.AddSite(core.SiteSpec{VPN: v, Name: v + "-site-V2", PE: "LSR-edge-2",
			Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	}

	// §4.2 Exchanging reachability information: MP-BGP distributes the
	// VPN-IPv4 routes with labels piggybacked.
	fmt.Println("\n== §4.2 reachability exchange (MP-BGP, labels piggybacked) ==")
	b.ConvergeVPNs()
	sp, _ := b.BGP.Speaker(mustNode(b, "LSR-edge-1"))
	for _, r := range sp.BestRoutes() {
		fmt.Printf("  [rib LSR-edge-1] %s\n", r)
	}

	// §4.3 Carrying data traffic: Fig. 2's tunnels in action — both VPNs
	// use the same addresses, each delivery stays inside its VPN.
	fmt.Println("\n== §4.3 / Fig. 2-3: data over per-VPN LSP tunnels ==")
	fa, _ := b.FlowBetween("vpn-A-data", "vpn-A-site-V1", "vpn-A-site-V2", 80)
	fb, _ := b.FlowBetween("vpn-B-data", "vpn-B-site-V1", "vpn-B-site-V2", 81)
	trafgen.CBR(b.Net, fa, 500, 10*sim.Millisecond, 0, sim.Second)
	trafgen.CBR(b.Net, fb, 500, 10*sim.Millisecond, 0, sim.Second)
	b.Net.Run()
	fmt.Printf("  %s\n  %s\n", fa.Stats.Summary(), fb.Stats.Summary())
	fmt.Printf("  isolation violations: %d (same 10.x addresses in both VPNs)\n", b.IsolationViolations)

	// Fig. 4: a labelled packet (path 1) vs an unlabelled packet (path 2).
	fmt.Println("\n== Fig. 4: labelled vs unlabelled packets in the backbone ==")
	fmt.Println("path 1 — VPN traffic (labelled end to end):")
	fmt.Print(indent(b.TraceRoute("vpn-A-site-V1", addr.MustParseIPv4("10.2.0.1"), packet.DSCPEF).String()))
	fmt.Println("path 2 — a destination outside the VPN (dropped at the edge):")
	tr := b.TraceRoute("vpn-A-site-V1", addr.MustParseIPv4("10.99.0.1"), 0)
	fmt.Print(indent(tr.String()))
	fmt.Println("  (no unlabelled customer packet ever crosses the Fig. 4 core: either")
	fmt.Println("   the edge LSR labels it onto a VPN tunnel, or it stops right there)")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

func mustNode(b *core.Backbone, name string) topo.NodeID {
	n, ok := b.G.NodeByName(name)
	if !ok {
		panic(name)
	}
	return n
}
