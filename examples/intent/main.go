// Intent: the declarative provisioning plane at scale — one bulk directive
// declares a thousand VPNs, the reconciler compiles the desired-vs-actual
// diff into rate-limited transactional commits, and a mid-commit crash of
// the reconciler is shown to leave the backbone byte-identical (by state
// digest) to a run that was never interrupted.
//
//	go run ./examples/intent
package main

import (
	"fmt"
	"strings"

	"mplsvpn/internal/core"
	"mplsvpn/internal/intent"
	"mplsvpn/internal/netconf"
	"mplsvpn/internal/sim"
)

const spec = `intent fleet version=1
# One line, one thousand customers: 2 sites each, round-robin over 4 PEs,
# /24s carved consecutively out of 10.0.0.0/13.
bulk cust count=1000 pes=PE1,PE2,PE3,PE4 base=10.0.0.0/13 sla=af21
# Plus one hand-written premium customer with a protected tunnel.
vpn gold sla=ef
site gold gold-hq PE1 10.200.0.0/24 hosts=2 shape=20M
site gold gold-dr PE3 10.201.0.0/24
tunnel gold gold-lsp PE1 PE3 5M class=ef
`

func build() *core.Backbone {
	b := core.NewBackbone(core.Config{Seed: 7})
	for _, pe := range []string{"PE1", "PE2", "PE3", "PE4"} {
		b.AddPE(pe)
	}
	b.AddP("P1")
	b.AddP("P2")
	for _, pe := range []string{"PE1", "PE2"} {
		b.Link(pe, "P1", 1e9, sim.Millisecond, 1)
	}
	for _, pe := range []string{"PE3", "PE4"} {
		b.Link(pe, "P2", 1e9, sim.Millisecond, 1)
	}
	b.Link("P1", "P2", 10e9, 2*sim.Millisecond, 1)
	b.BuildProvider()
	return b
}

// provision reconciles the spec onto a fresh backbone, optionally killing
// the reconciler mid-commit and restarting it, and returns the final
// digest plus the counters that tell the story.
func provision(killAt, restartAt sim.Time) (string, *netconf.Server, *intent.Reconciler) {
	b := build()
	srv := netconf.NewServer(b)
	store := intent.NewStore()
	sp, err := intent.Parse(strings.NewReader(spec), "fleet")
	if err != nil {
		panic(err)
	}
	if err := store.Put(sp); err != nil {
		panic(err)
	}
	rec := intent.NewReconciler(srv, store, intent.Options{
		Interval:       20 * sim.Millisecond,
		BatchOps:       128,
		ValidateGap:    sim.Millisecond,
		ConfirmDelay:   2 * sim.Millisecond,
		ConfirmTimeout: 10 * sim.Millisecond,
		Horizon:        10 * sim.Second,
	})
	rec.Start()
	if killAt > 0 {
		b.E.Schedule(killAt, func() { rec.Kill() })
		b.E.Schedule(restartAt, func() { rec.Restart() })
	}
	b.Net.RunUntil(10 * sim.Second)
	if !rec.Converged() {
		panic(fmt.Sprintf("reconciler did not converge; %d ops pending", len(rec.Diff())))
	}
	return b.StateDigest(), srv, rec
}

func main() {
	sp, _ := intent.Parse(strings.NewReader(spec), "fleet")
	nSites := 0
	for _, vs := range sp.VPNs {
		nSites += len(vs.Sites)
	}
	fmt.Printf("spec %q v%d: %d VPNs, %d sites from %d source lines\n\n",
		sp.Name, sp.Version, len(sp.VPNs), nSites, strings.Count(spec, "\n"))

	fmt.Println("--- run A: uninterrupted bulk provisioning ---")
	digA, srvA, recA := provision(0, 0)
	fmt.Printf("batches=%d ops=%d (cap 128/commit) scans=%d retries=%d quarantined=%d\n",
		recA.Stats.Batches, recA.Stats.OpsApplied, recA.Stats.Scans,
		recA.Stats.Retries, recA.Stats.Quarantined)
	fmt.Printf("sessions: %d commits, %d rollbacks, %d auto-rollbacks\n\n",
		srvA.Commits, srvA.Rollbacks, srvA.AutoRolled)

	fmt.Println("--- run B: reconciler killed mid-commit at t=103ms, restarted at t=500ms ---")
	// 103 ms lands between a batch's commit and its confirm: the commit is
	// left unconfirmed and the server's auto-rollback timer erases it.
	digB, srvB, recB := provision(103*sim.Millisecond, 500*sim.Millisecond)
	fmt.Printf("batches=%d ops=%d scans=%d retries=%d quarantined=%d\n",
		recB.Stats.Batches, recB.Stats.OpsApplied, recB.Stats.Scans,
		recB.Stats.Retries, recB.Stats.Quarantined)
	fmt.Printf("sessions: %d commits, %d rollbacks, %d auto-rollbacks\n\n",
		srvB.Commits, srvB.Rollbacks, srvB.AutoRolled)

	fmt.Printf("state digest A: %d bytes, digest B: %d bytes\n", len(digA), len(digB))
	if digA == digB {
		fmt.Println("digests IDENTICAL: the crash left no trace in the provisioned state")
	} else {
		fmt.Println("digests DIVERGED: transactional provisioning is broken")
	}
}
