// Voice SLA: the paper's Fig. 4 end-to-end QoS story. A CE classifies
// traffic with a CBQ policy (voice -> EF with a policer, everything else
// best effort), the PE maps DSCP into the MPLS EXP bits, and the congested
// backbone schedules by class. The same run is repeated with the QoS
// architecture disabled to show the difference an SLA customer would see.
//
//	go run ./examples/voicesla
package main

import (
	"fmt"
	"strings"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/qos"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/stats"
	"mplsvpn/internal/telemetry"
	"mplsvpn/internal/trafgen"
)

func build(qosOn bool) (*core.Backbone, *trafgen.Flow, *trafgen.Flow) {
	sched := core.SchedHybrid
	if !qosOn {
		sched = core.SchedFIFO
	}
	b := core.NewBackbone(core.Config{Seed: 42, Scheduler: sched, DisableEXPMapping: !qosOn})
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddP("P2")
	b.AddPE("PE2")
	b.Link("PE1", "P1", 100e6, sim.Millisecond, 1)
	b.Link("P1", "P2", 10e6, 2*sim.Millisecond, 1) // the bottleneck
	b.Link("P2", "PE2", 100e6, sim.Millisecond, 1)
	b.BuildProvider()

	b.DefineVPN("acme")
	// The CPE classifier: voice (UDP 5060) marked EF, policed to 1 Mb/s;
	// the rest defaults to best effort. "The customer premises device
	// could use technologies such as CBQ to classify traffic" (§5).
	cl := qos.VoiceDataPolicy(5060, 1e6/8)
	b.AddSite(core.SiteSpec{VPN: "acme", Name: "hq", PE: "PE1",
		Prefixes:   []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")},
		Classifier: cl})
	b.AddSite(core.SiteSpec{VPN: "acme", Name: "callcenter", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()

	// 8 G.711-like calls plus a greedy bulk transfer overloading the core.
	voice, _ := b.FlowBetween("voice", "hq", "callcenter", 5060)
	bulk, _ := b.FlowBetween("bulk", "hq", "callcenter", 80)
	for i := 0; i < 8; i++ {
		trafgen.CBR(b.Net, voice, 160, 20*sim.Millisecond, sim.Time(i)*2*sim.Millisecond, 5*sim.Second)
	}
	trafgen.CBR(b.Net, bulk, 1400, 850*sim.Microsecond, 0, 5*sim.Second)
	return b, voice, bulk
}

func main() {
	fmt.Println("voicesla: 8 calls + bulk through a 10 Mb/s bottleneck (~1.4x load)")
	for _, mode := range []bool{false, true} {
		b, voice, bulk := build(mode)
		// The streaming telemetry plane replaces hand-rolled reporting: flow
		// export attributes bytes per (vpn, site-pair, class) each second.
		b.EnableTelemetry(core.TelemetryOptions{Interval: sim.Second, Horizon: 5 * sim.Second})
		b.Net.RunUntil(6 * sim.Second)
		label := "best-effort (FIFO, no EXP mapping)"
		if mode {
			label = "QoS architecture (CBQ -> DSCP -> EXP -> hybrid sched)"
		}
		fmt.Printf("\n--- %s ---\n", label)
		fmt.Println(voice.Stats.Summary())
		fmt.Println(bulk.Stats.Summary())
		q := stats.ScoreVoice(voice.Stats)
		fmt.Printf("voice verdict: %s (E-model R=%.1f, MOS=%.2f)\n", q.Grade(), q.R, q.MOS)

		// Render the operator's view: VPN-level series plus the per-class
		// flow export (the full registry has a series per port per class).
		snap := b.TelemetrySnapshot()
		var kept []telemetry.Metric
		for _, m := range snap.Metrics {
			if strings.HasPrefix(m.Name, "vpn_") || strings.HasPrefix(m.Name, "classifier_") {
				kept = append(kept, m)
			}
		}
		snap.Metrics = kept
		fmt.Print(snap.Text())
	}
}
