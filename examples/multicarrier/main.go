// Multicarrier: one VPN spanning three providers — the paper's §5 closing
// claim that QoS-capable MPLS VPNs "allow the building of VPNs using
// multiple carriers as necessary, an option not available with most frame
// relay offerings" — wired with the RFC 4364 inter-AS peering plane, one
// interconnect per option:
//
//	carrierA (ny)    --option B-- carrierT (pure transit)
//	carrierT         --option C-- carrierB (london)
//	carrierA         --option A-- carrierB (direct backup, abstractly dear)
//
// Voice normally crosses the cheap two-hop chain through the transit
// carrier. Mid-run the transit carrier suffers a total outage — every
// node at once; the inter-AS hello machine detects the silence, graceful
// restart carries the stale boundary state, and the selector moves the
// VPN onto the direct backup peering. When the transit carrier returns,
// the cheap path wins again.
//
//	go run ./examples/multicarrier
package main

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/trafgen"
)

func main() {
	x := core.NewInterAS(7,
		[]string{"carrierA", "carrierT", "carrierB"},
		[]core.Config{
			{Seed: 1, Scheduler: core.SchedHybrid},
			{Seed: 2, Scheduler: core.SchedHybrid},
			{Seed: 3, Scheduler: core.SchedHybrid},
		})

	// Each carrier: edge PE — core — two ASBRs, 10 Mb/s core constraint.
	for _, asn := range []string{"carrierA", "carrierT", "carrierB"} {
		b := x.AS(asn)
		b.AddPE(asn + "-PE")
		b.AddP(asn + "-P")
		b.AddPE(asn + "-ASBR1")
		b.AddPE(asn + "-ASBR2")
		b.Link(asn+"-PE", asn+"-P", 100e6, sim.Millisecond, 1)
		b.Link(asn+"-P", asn+"-ASBR1", 10e6, 2*sim.Millisecond, 1)
		b.Link(asn+"-P", asn+"-ASBR2", 10e6, 2*sim.Millisecond, 1)
		b.BuildProvider()
		b.DefineVPN("worldcorp")
	}

	x.AS("carrierA").AddSite(core.SiteSpec{VPN: "worldcorp", Name: "ny", PE: "carrierA-PE",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	x.AS("carrierB").AddSite(core.SiteSpec{VPN: "worldcorp", Name: "london", PE: "carrierB-PE",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	for _, asn := range []string{"carrierA", "carrierT", "carrierB"} {
		x.AS(asn).ConvergeVPNs()
		x.SetASTransit(asn, 0.002, 10e6)
	}

	// One peering per RFC 4364 option: labeled eBGP into the transit
	// carrier, a stitched end-to-end label plane out of it, and a
	// back-to-back VRF link straight between the edge carriers as backup.
	for _, spec := range []core.PeeringSpec{
		{ASA: "carrierA", ASBRA: "carrierA-ASBR1", ASB: "carrierT", ASBRB: "carrierT-ASBR1",
			VPNs: []string{"worldcorp"}, Option: core.OptionB, Delay: 5 * sim.Millisecond},
		{ASA: "carrierT", ASBRA: "carrierT-ASBR2", ASB: "carrierB", ASBRB: "carrierB-ASBR1",
			VPNs: []string{"worldcorp"}, Option: core.OptionC, Delay: 5 * sim.Millisecond},
		{ASA: "carrierA", ASBRA: "carrierA-ASBR2", ASB: "carrierB", ASBRB: "carrierB-ASBR2",
			VPNs: []string{"worldcorp"}, Option: core.OptionA, Delay: 5 * sim.Millisecond,
			AbstractDelay: 0.050},
	} {
		if _, err := x.AddPeering(spec); err != nil {
			panic(err)
		}
	}
	x.ReconcilePeerings()
	x.EnableInterASSurvivability(core.InterASSurvivabilityOptions{
		Hello:           25 * sim.Millisecond,
		HoldMisses:      3,
		GracefulRestart: true,
		RestartTime:     400 * sim.Millisecond,
		Horizon:         5 * sim.Second,
	})

	voice, _ := x.FlowBetween("voice", "carrierA", "ny", "carrierB", "london", 5060)
	voice.DSCP = packet.DSCPEF
	bulk, _ := x.FlowBetween("bulk", "carrierA", "ny", "carrierB", "london", 80)
	for i := 0; i < 4; i++ {
		trafgen.CBR(x.Net, voice, 160, 20*sim.Millisecond, sim.Time(i)*5*sim.Millisecond, 4*sim.Second)
	}
	trafgen.CBR(x.Net, bulk, 1400, 2*sim.Millisecond, 0, 4*sim.Second)

	// The outage: every node and session of the transit carrier at once.
	x.E.Schedule(1500*sim.Millisecond, func() {
		if err := x.FailAS("carrierT"); err != nil {
			panic(err)
		}
	})
	var midPath []int
	x.E.Schedule(2800*sim.Millisecond, func() {
		midPath, _ = x.SelectedPath("worldcorp", "carrierB", "carrierA")
	})
	x.E.Schedule(3*sim.Second, func() {
		if err := x.RestoreAS("carrierT", 100*sim.Millisecond); err != nil {
			panic(err)
		}
	})
	x.Net.RunUntil(5 * sim.Second)

	fmt.Println("multicarrier: ny (carrierA) <-> london (carrierB) via carrierT, one peering per RFC 4364 option")
	fmt.Println(voice.Stats.Summary())
	fmt.Println(bulk.Stats.Summary())
	fmt.Printf("\nmid-outage selection: peering path %v (direct backup)\n", midPath)
	post, _ := x.SelectedPath("worldcorp", "carrierB", "carrierA")
	fmt.Printf("post-restore selection: peering path %v (back through the transit carrier)\n", post)
	st := x.InterASStatsNow()
	fmt.Printf("peering flaps=%d restores=%d failovers=%d reinstalls=%d\n",
		st.PeeringFlaps, st.PeeringRestores, st.Failovers, st.Reinstalls)
	if voice.Stats.LossRate() < 0.20 && len(midPath) == 1 && len(post) == 2 {
		fmt.Println("OK: voice survived a total transit-carrier outage on the backup peering")
	}
	fmt.Println()
	fmt.Println(x.SelectionDigest())
}
