// Multicarrier: one VPN spanning two providers — the paper's §5 closing
// claim that QoS-capable MPLS VPNs "allow the building of VPNs using
// multiple carriers as necessary, an option not available with most frame
// relay offerings." Two ASes run their own IGP/LDP/BGP; an RFC 2547
// option-A interconnect joins the VPN at the ASBRs; voice crosses both
// backbones with its SLA intact.
//
//	go run ./examples/multicarrier
package main

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/trafgen"
)

func main() {
	x := core.NewInterAS(7,
		[]string{"carrierA", "carrierB"},
		[]core.Config{
			{Seed: 1, Scheduler: core.SchedHybrid},
			{Seed: 2, Scheduler: core.SchedHybrid},
		})

	// Each carrier: edge PE — two core routers — ASBR, with a 10 Mb/s
	// core constraint.
	for _, asn := range []string{"carrierA", "carrierB"} {
		b := x.AS(asn)
		b.AddPE(asn + "-PE")
		b.AddP(asn + "-P1")
		b.AddP(asn + "-P2")
		b.AddPE(asn + "-ASBR")
		b.Link(asn+"-PE", asn+"-P1", 100e6, sim.Millisecond, 1)
		b.Link(asn+"-P1", asn+"-P2", 10e6, 2*sim.Millisecond, 1)
		b.Link(asn+"-P2", asn+"-ASBR", 100e6, sim.Millisecond, 1)
		b.BuildProvider()
		b.DefineVPN("worldcorp")
	}

	x.AS("carrierA").AddSite(core.SiteSpec{VPN: "worldcorp", Name: "ny", PE: "carrierA-PE",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	x.AS("carrierB").AddSite(core.SiteSpec{VPN: "worldcorp", Name: "london", PE: "carrierB-PE",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	x.AS("carrierA").ConvergeVPNs()
	x.AS("carrierB").ConvergeVPNs()

	if err := x.ConnectVPN("worldcorp",
		"carrierA", "carrierA-ASBR",
		"carrierB", "carrierB-ASBR", 100e6, 5*sim.Millisecond); err != nil {
		panic(err)
	}

	voice, _ := x.FlowBetween("voice", "carrierA", "ny", "carrierB", "london", 5060)
	voice.DSCP = packet.DSCPEF
	bulk, _ := x.FlowBetween("bulk", "carrierA", "ny", "carrierB", "london", 80)
	for i := 0; i < 4; i++ {
		trafgen.CBR(x.Net, voice, 160, 20*sim.Millisecond, sim.Time(i)*5*sim.Millisecond, 3*sim.Second)
	}
	trafgen.CBR(x.Net, bulk, 1400, 900*sim.Microsecond, 0, 3*sim.Second)
	x.Net.RunUntil(4 * sim.Second)

	fmt.Println("multicarrier: ny (carrierA) <-> london (carrierB), option-A interconnect")
	fmt.Println(voice.Stats.Summary())
	fmt.Println(bulk.Stats.Summary())
	fmt.Printf("\ncarrierA core label lookups: %d, carrierB: %d (each AS runs its own label plane)\n",
		x.AS("carrierA").Router("carrierA-P1").LabelLookups,
		x.AS("carrierB").Router("carrierB-P1").LabelLookups)
	if voice.Stats.LossRate() == 0 && voice.Stats.Latency.Percentile(99) < 25 {
		fmt.Println("OK: voice SLA held across both carriers while bulk absorbed the congestion")
	}
}
