// Quickstart: the smallest end-to-end MPLS VPN — a four-router backbone,
// one VPN with two sites, and a ping-like probe flow measured across it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/trafgen"
)

func main() {
	// 1. Backbone: PE1 - P1 - P2 - PE2, 100 Mb/s links, hybrid QoS ports.
	b := core.NewBackbone(core.Config{Seed: 1, Scheduler: core.SchedHybrid})
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddP("P2")
	b.AddPE("PE2")
	b.Link("PE1", "P1", 100e6, sim.Millisecond, 1)
	b.Link("P1", "P2", 100e6, 2*sim.Millisecond, 1)
	b.Link("P2", "PE2", 100e6, sim.Millisecond, 1)
	b.BuildProvider() // IGP + LDP converge: LSPs now join all loopbacks

	// 2. A VPN with a site at each edge. RFC 2547 RD/RT identities, VRFs,
	// VPN labels, and BGP distribution all happen inside these calls.
	b.DefineVPN("acme")
	b.AddSite(core.SiteSpec{VPN: "acme", Name: "hq", PE: "PE1",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
	b.AddSite(core.SiteSpec{VPN: "acme", Name: "branch", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}})
	b.ConvergeVPNs()

	// 3. Probe traffic: 100 pings, 64 bytes, one per 10 ms.
	ping, err := b.FlowBetween("ping", "hq", "branch", 7)
	if err != nil {
		panic(err)
	}
	trafgen.CBR(b.Net, ping, 64, 10*sim.Millisecond, 0, sim.Second)
	b.Net.Run()

	fmt.Println("quickstart: hq -> branch across the MPLS backbone")
	fmt.Println(ping.Stats.Summary())
	fmt.Printf("ldp ILM entries network-wide: %d, bgp updates: %d\n",
		b.LDP.TotalILMEntries(), b.BGP.UpdatesSent)
	fmt.Printf("members of VPN acme: ")
	for _, m := range b.Registry.Members("acme") {
		fmt.Printf("%s ", m.Name)
	}
	fmt.Println()
	if ping.Stats.Delivered == ping.Stats.Sent {
		fmt.Println("OK: all probes delivered end to end")
	}
}
