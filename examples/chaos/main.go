// Chaos: deterministic fault injection against a dual-path backbone.
// A scripted scenario flaps the primary path, crashes and restarts a P
// router, and cuts a site's access link — with a lossy control plane —
// while the resilience plane keeps the two TE intents alive: failed
// re-signals retry with backoff, a squeezed reservation degrades to a
// journaled smaller guarantee, and the full reservation is restored when
// capacity returns. The survivability directives sessionize the control
// plane: the P-router crash flaps BGP/LDP sessions, graceful restart
// retains the routes as stale across the outage, and the flap trains
// charge route-flap damping penalties. After every injected event the
// invariant checker proves no cross-VPN leakage, no forwarding loops,
// and per-port byte conservation.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"strings"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/chaos"
	"mplsvpn/internal/core"
	"mplsvpn/internal/rsvp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/trafgen"
)

// scenario mixes every fault type the injector knows; 22 operations total
// once the flap trains are expanded.
const scenario = `
survivability hello=20ms hold=3 restart=900ms gr=on
damping penalty=1000 suppress=1800 reuse=800 halflife=1500ms
ctrlloss 0.25 extra=150ms
flap PE1 P1 at=500ms count=5 down=80ms up=120ms detect=10ms jitter=30ms
crash P2 at=2200ms detect=50ms
restart P2 at=2700ms detect=50ms
cut a2 at=3s
uncut a2 at=3400ms
flap P1 PE2 at=3800ms count=3 down=60ms up=90ms detect=5ms jitter=20ms
fail PE1 P1 at=5s detect=20ms
restore PE1 P1 at=5300ms detect=20ms
`

func main() {
	const horizon = 7 * sim.Second
	b := core.NewBackbone(core.Config{Seed: 11, Scheduler: core.SchedHybrid})
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddP("P2")
	b.AddPE("PE2")
	// Two disjoint 5 Mb/s paths: together the TE intents (3 + 3 Mb/s)
	// fit, but any single surviving path forces degradation.
	b.Link("PE1", "P1", 5e6, sim.Millisecond, 1)
	b.Link("P1", "PE2", 5e6, sim.Millisecond, 1)
	b.Link("PE1", "P2", 5e6, sim.Millisecond, 2)
	b.Link("P2", "PE2", 5e6, sim.Millisecond, 2)
	b.BuildProvider()

	b.DefineVPN("alpha")
	b.DefineVPN("beta")
	for _, s := range []struct{ vpn, name, pe, prefix string }{
		{"alpha", "a1", "PE1", "10.1.0.0/16"},
		{"alpha", "a2", "PE2", "10.2.0.0/16"},
		{"beta", "b1", "PE1", "10.3.0.0/16"},
		{"beta", "b2", "PE2", "10.4.0.0/16"},
	} {
		b.AddSite(core.SiteSpec{VPN: s.vpn, Name: s.name, PE: s.pe,
			Prefixes: []addr.Prefix{addr.MustParsePrefix(s.prefix)}})
	}
	b.ConvergeVPNs()

	tel := b.EnableTelemetry(core.TelemetryOptions{Horizon: horizon, JournalCap: 4096})
	b.EnableResilience(core.ResilienceOptions{
		Policy:       core.DegradeShrink,
		RestoreProbe: 250 * sim.Millisecond,
		Horizon:      horizon,
	})
	must(b.SetupTELSPForVPN("te-alpha", "PE1", "PE2", "alpha", 3e6, -1, rsvp.SetupOptions{}))
	must(b.SetupTELSPForVPN("te-beta", "PE1", "PE2", "beta", 3e6, -1, rsvp.SetupOptions{}))

	fa, _ := b.FlowBetween("alpha-traffic", "a1", "a2", 5060)
	fb, _ := b.FlowBetween("beta-traffic", "b1", "b2", 80)
	trafgen.CBR(b.Net, fa, 500, 5*sim.Millisecond, 0, horizon)
	trafgen.CBR(b.Net, fb, 1000, 5*sim.Millisecond, 0, horizon)

	sc, err := chaos.ParseScenario(strings.NewReader(scenario), "flap-storm")
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario %q: %d operations over %v\n\n", sc.Name, sc.EventCount(), sc.Duration())

	b.EnableSurvivability(chaos.SurvivabilityOptions(sc, horizon))
	inj := chaos.New(b, sc)
	inj.Schedule()
	b.Net.RunUntil(horizon + sim.Second)

	fmt.Println(inj.Report())
	for _, v := range inj.Checker.Violations {
		fmt.Println("  VIOLATION:", v)
	}

	fmt.Println("\nTE intents after the storm:")
	for _, st := range b.TEIntents() {
		line := fmt.Sprintf("  %-10s %-7s %-9s %.1f/%.1f Mb/s", st.Name, st.VPN, st.State,
			st.Bandwidth/1e6, st.FullBandwidth/1e6)
		if st.Path != "" {
			line += "  via " + st.Path
		}
		fmt.Println(line)
	}

	st := b.SessionStats()
	fmt.Printf("\nsessions: %d flaps, %d restores, %d stale swept, %d withdrawn, %d damped, %d reused\n",
		st.Flaps, st.Restores, st.StaleSwept, st.Withdrawn, st.Damped, st.Reused)

	fmt.Printf("\ntraffic: %s\n", fa.Stats.Summary())
	fmt.Printf("         %s\n", fb.Stats.Summary())
	fmt.Printf("isolation violations: %d\n", b.IsolationViolations)

	// The resilience story, straight from the journal.
	fmt.Println("\nresilience events (journal excerpt):")
	shown := 0
	for _, e := range tel.Journal.Events() {
		k := e.Kind.String()
		if k == "te_retry" || k == "te_degraded" || k == "te_restored" || k == "ctrl_loss" ||
			k == "session_flap" || k == "session_restored" || k == "route_damped" || k == "route_reused" {
			fmt.Println("  " + e.String())
			shown++
			if shown >= 12 {
				fmt.Println("  ...")
				break
			}
		}
	}
}

func must(l *rsvp.LSP, err error) {
	if err != nil {
		panic(err)
	}
}
