// Backbone: the full architecture on an ISP-scale topology — an 11-router
// national backbone (modelled on the classic Abilene shape), three customer
// VPNs with overlapping address space, CBQ classification at the CEs,
// DS-TE premium tunnels, ECMP in the core, a mid-run fibre cut with
// 150 ms detection, and an SLA report plus a delivery-rate figure.
//
//	go run ./examples/backbone
package main

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/packet"
	"mplsvpn/internal/qos"
	"mplsvpn/internal/rsvp"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/stats"
	"mplsvpn/internal/topo"
	"mplsvpn/internal/trafgen"
)

func main() {
	b := core.NewBackbone(core.Config{
		Seed:                2026,
		Scheduler:           core.SchedHybrid,
		WRED:                true,
		DSTEPremiumFraction: 0.4,
	})

	// An Abilene-like national core: PEs at the coasts and Texas, P routers
	// inland. 155 Mb/s (OC-3-class) core, a few 55 Mb/s regional links.
	for _, pe := range []string{"SEA", "LAX", "NYC", "DCA", "HOU"} {
		b.AddPE(pe)
	}
	for _, p := range []string{"DEN", "KSC", "IND", "CHI", "ATL", "SNV"} {
		b.AddP(p)
	}
	type l struct {
		a, b string
		bw   float64
		ms   int
	}
	for _, e := range []l{
		{"SEA", "DEN", 155e6, 8}, {"SEA", "SNV", 155e6, 6},
		{"SNV", "LAX", 155e6, 3}, {"SNV", "DEN", 155e6, 7},
		{"LAX", "HOU", 155e6, 9}, {"DEN", "KSC", 155e6, 5},
		{"KSC", "HOU", 155e6, 5}, {"KSC", "IND", 155e6, 4},
		{"HOU", "ATL", 55e6, 7}, {"IND", "CHI", 155e6, 2},
		{"IND", "ATL", 55e6, 4}, {"CHI", "NYC", 155e6, 6},
		{"ATL", "DCA", 55e6, 5}, {"NYC", "DCA", 155e6, 2},
	} {
		b.Link(e.a, e.b, e.bw, sim.Time(e.ms)*sim.Millisecond, 1)
	}
	b.BuildProvider()

	// Three customers; "retailer" and "bank" both number out of 10.0.0.0/8.
	for _, v := range []string{"retailer", "bank", "media"} {
		b.DefineVPN(v)
	}
	voicePolicy := func() *qos.Classifier { return qos.VoiceDataPolicy(5060, 2e6/8) }
	sites := []core.SiteSpec{
		{VPN: "retailer", Name: "ret-hq", PE: "NYC", Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}, Classifier: voicePolicy()},
		{VPN: "retailer", Name: "ret-west", PE: "LAX", Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}},
		{VPN: "retailer", Name: "ret-south", PE: "HOU", Prefixes: []addr.Prefix{addr.MustParsePrefix("10.3.0.0/16")}},
		{VPN: "bank", Name: "bank-hq", PE: "NYC", Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}, Classifier: voicePolicy()},
		{VPN: "bank", Name: "bank-dc", PE: "DCA", Prefixes: []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}},
		{VPN: "bank", Name: "bank-west", PE: "SEA", Prefixes: []addr.Prefix{addr.MustParsePrefix("10.3.0.0/16")}},
		{VPN: "media", Name: "media-east", PE: "NYC", Prefixes: []addr.Prefix{addr.MustParsePrefix("172.20.0.0/16")}},
		{VPN: "media", Name: "media-west", PE: "SEA", Prefixes: []addr.Prefix{addr.MustParsePrefix("172.21.0.0/16")}},
	}
	for _, s := range sites {
		b.AddSite(s)
	}
	b.ConvergeVPNs()

	// Premium DS-TE tunnel for the bank's coast-to-coast voice.
	if _, err := b.SetupTELSPForVPN("bank-voice", "NYC", "SEA", "bank", 10e6, qos.ClassVoice, rsvp.SetupOptions{}); err != nil {
		fmt.Println("TE setup:", err)
	}

	// Workloads.
	const dur = 5 * sim.Second
	rng := b.E.Rand().Fork()
	mk := func(name, from, to string, port uint16, dscp packet.DSCP) *trafgen.Flow {
		f, err := b.FlowBetween(name, from, to, port)
		if err != nil {
			panic(err)
		}
		f.DSCP = dscp
		return f
	}
	voice := mk("bank-voice", "bank-hq", "bank-west", 5060, packet.DSCPEF)
	for i := 0; i < 16; i++ {
		trafgen.CBR(b.Net, voice, 160, 20*sim.Millisecond, sim.Time(i)*sim.Millisecond, dur)
	}
	trans := mk("bank-trans", "bank-hq", "bank-dc", 9000, packet.DSCPAF41)
	trafgen.Poisson(b.Net, trans, 300, 2000, 0, dur, rng)
	web := mk("ret-web", "ret-hq", "ret-west", 443, packet.DSCPAF21)
	trafgen.Poisson(b.Net, web, 600, 1500, 0, dur, rng)
	bulkFlow := mk("media-bulk", "media-east", "media-west", 80, packet.DSCPBestEffort)
	bulk := b.AttachAIMD(bulkFlow, 1400, dur)
	bulk.Start(0)
	scav := mk("ret-sync", "ret-hq", "ret-south", 873, packet.DSCPCS1)
	trafgen.CBR(b.Net, scav, 1400, 500*sim.Microsecond, 0, dur) // 22 Mb/s onto the 55M southern arc

	// Figure: voice deliveries per 100 ms through the fibre cut.
	ts := stats.NewTimeSeries("bank voice deliveries per 100 ms (CHI-NYC cut at t=2 s, 150 ms detection)", 100*sim.Millisecond)
	b.OnDeliver(func(_ topo.NodeID, p *packet.Packet) {
		if p.L4.DstPort == 5060 && p.OriginVPN == "bank" {
			ts.Incr(b.E.Now())
		}
	})

	// The fibre cut: CHI-NYC goes down at t=2 s.
	b.E.Schedule(2*sim.Second, func() { b.FailLink("CHI", "NYC", 150*sim.Millisecond) })

	b.Net.RunUntil(dur + sim.Second)

	fmt.Println("backbone: 11-router national core, 3 VPNs, DS-TE, fibre cut at t=2s")
	fmt.Println()
	for _, f := range []*trafgen.Flow{voice, trans, web, bulkFlow, scav} {
		fmt.Println(f.Stats.Summary())
	}
	fmt.Printf("\nisolation violations: %d, igp msgs: %d, bgp updates: %d, TE LSPs: %d\n",
		b.IsolationViolations, b.IGP.MessagesSent, b.BGP.UpdatesSent, len(b.RSVP.LSPs()))
	fmt.Println()
	fmt.Println(ts.Render(40))
}
