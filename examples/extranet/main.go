// Extranet: the paper's §1 motivation — "linking customers and partners
// into extranets on an ad-hoc basis" — with deliberately overlapping
// customer address space. Two companies both number their sites out of
// 10.0.0.0/8; each keeps its own private world, and a shared extranet VRF
// bridges exactly the prefixes both agree to expose.
//
//	go run ./examples/extranet
package main

import (
	"fmt"

	"mplsvpn/internal/addr"
	"mplsvpn/internal/core"
	"mplsvpn/internal/sim"
	"mplsvpn/internal/trafgen"
)

func main() {
	b := core.NewBackbone(core.Config{Seed: 7, Scheduler: core.SchedHybrid})
	b.AddPE("PE1")
	b.AddP("P1")
	b.AddPE("PE2")
	b.Link("PE1", "P1", 100e6, sim.Millisecond, 1)
	b.Link("P1", "PE2", 100e6, sim.Millisecond, 1)
	b.BuildProvider()

	// Two companies, same address plan: 10.1/16 at HQ, 10.2/16 at branch.
	b.DefineVPN("acme")
	b.DefineVPN("globex")
	for _, company := range []string{"acme", "globex"} {
		b.AddSite(core.SiteSpec{VPN: company, Name: company + "-hq", PE: "PE1",
			Prefixes: []addr.Prefix{addr.MustParsePrefix("10.1.0.0/16")}})
		branch := []addr.Prefix{addr.MustParsePrefix("10.2.0.0/16")}
		if company == "globex" {
			// A prefix only globex owns: the leak probe below targets it.
			branch = append(branch, addr.MustParsePrefix("10.99.0.0/16"))
		}
		b.AddSite(core.SiteSpec{VPN: company, Name: company + "-branch", PE: "PE2",
			Prefixes: branch})
	}

	// The ad-hoc extranet: a shared-services site importing both RTs.
	b.DefineVPNWithRTs("extranet",
		[]addr.RouteTarget{b.RTOf("acme"), b.RTOf("globex")},
		[]addr.RouteTarget{b.RTOf("acme"), b.RTOf("globex")})
	b.AddSite(core.SiteSpec{VPN: "extranet", Name: "shared-dc", PE: "PE2",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("172.16.0.0/16")}})
	b.ConvergeVPNs()

	// Traffic matrix:
	//   each company's hq -> its own branch (same dst address 10.2.0.1!)
	//   each company's hq -> the shared extranet DC
	//   acme hq -> 10.99.0.1, a prefix only globex owns (must be dropped)
	mk := func(name, from, to string, port uint16) *trafgen.Flow {
		f, err := b.FlowBetween(name, from, to, port)
		if err != nil {
			panic(err)
		}
		trafgen.CBR(b.Net, f, 200, 10*sim.Millisecond, 0, sim.Second)
		return f
	}
	acmeIntra := mk("acme-intra", "acme-hq", "acme-branch", 1001)
	globexIntra := mk("globex-intra", "globex-hq", "globex-branch", 1002)
	acmeDC := mk("acme-dc", "acme-hq", "shared-dc", 1003)
	globexDC := mk("globex-dc", "globex-hq", "shared-dc", 1004)
	cross, err := b.FlowBetween("cross", "acme-hq", "globex-branch", 1005)
	if err != nil {
		panic(err)
	}
	cross.Dst = addr.MustParseIPv4("10.99.0.1") // globex-only prefix
	b.ReregisterFlow(cross)
	trafgen.CBR(b.Net, cross, 200, 10*sim.Millisecond, 0, sim.Second)

	b.Net.Run()

	fmt.Println("extranet: overlapping 10/8 address plans, RT-bridged shared DC")
	for _, f := range []*trafgen.Flow{acmeIntra, globexIntra, acmeDC, globexDC, cross} {
		fmt.Println(f.Stats.Summary())
	}
	fmt.Printf("\nisolation violations: %d\n", b.IsolationViolations)
	switch {
	case cross.Stats.Delivered > 0:
		fmt.Println("FAIL: cross-company traffic leaked")
	case acmeIntra.Stats.Delivered == 0 || globexDC.Stats.Delivered == 0:
		fmt.Println("FAIL: legitimate traffic blocked")
	default:
		fmt.Println("OK: same addresses, separate worlds, shared DC reachable by both")
	}
}
